package qcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Config sizes a Cache. Zero values select the documented defaults.
type Config struct {
	// MaxBytes bounds the summed size of cached response bodies (plus a
	// fixed per-entry overhead). ≤ 0 disables caching entirely — New
	// returns nil, and every method on a nil *Cache is a safe no-op
	// bypass.
	MaxBytes int64
	// MaxEntries bounds the entry count (default MaxBytes/4KiB, min 64):
	// a flood of tiny responses cannot grow the index without bound.
	MaxEntries int
	// Shards is the number of independently locked LRU shards (default
	// 16, rounded up to a power of two). Sharding keeps the hot-path
	// critical section per-fingerprint-prefix instead of global.
	Shards int
}

// entryOverhead is the accounting charge per cache entry beyond its
// body: fingerprint key, list element, map bucket share.
const entryOverhead = 128

// Disposition reports how a lookup was satisfied.
type Disposition int

const (
	// Bypass: the cache did not participate (nil cache, or the request
	// could not be fingerprinted).
	Bypass Disposition = iota
	// Hit: served from a stored entry, no engine work.
	Hit
	// Miss: this caller computed the result (and stored it on success).
	Miss
	// Coalesced: another in-flight caller with the same fingerprint
	// computed the result; this caller waited and shared it.
	Coalesced
)

// String names the disposition for headers, logs, and metrics.
func (d Disposition) String() string {
	switch d {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "bypass"
}

// flight is one in-progress computation that concurrent identical
// requests attach to. The result fields are written exactly once,
// before done is closed; waiters read them only after <-done.
type flight struct {
	done    chan struct{}
	body    []byte
	err     error
	waiters atomic.Int64 // callers currently blocked on done (for tests/statz)
}

// shard is one independently locked LRU + singleflight table.
type shard struct {
	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[Fingerprint]*list.Element
	flights    map[Fingerprint]*flight
}

type entry struct {
	fp   Fingerprint
	body []byte
}

// Cache is a sharded, byte- and entry-bounded LRU over marshaled search
// responses, with singleflight coalescing of concurrent identical
// lookups. All methods are safe for concurrent use; all methods on a
// nil *Cache are no-op bypasses, so callers need no "is caching on"
// branches.
type Cache struct {
	shards []*shard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	sets      atomic.Int64
	evictions atomic.Int64
	purges    atomic.Int64
	bypasses  atomic.Int64
}

// New builds a cache, or returns nil (meaning "caching off") when
// cfg.MaxBytes ≤ 0.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	n = p
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = int(cfg.MaxBytes / 4096)
		if maxEntries < 64 {
			maxEntries = 64
		}
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	perBytes := cfg.MaxBytes / int64(n)
	if perBytes < 1 {
		perBytes = 1
	}
	perEntries := maxEntries / n
	if perEntries < 1 {
		perEntries = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			maxBytes:   perBytes,
			maxEntries: perEntries,
			ll:         list.New(),
			items:      make(map[Fingerprint]*list.Element),
			flights:    make(map[Fingerprint]*flight),
		}
	}
	return c
}

// shardFor picks the shard by the fingerprint's first bytes — SHA-256
// output is uniform, so no extra mixing is needed.
func (c *Cache) shardFor(fp Fingerprint) *shard {
	v := uint64(fp[0]) | uint64(fp[1])<<8 | uint64(fp[2])<<16 | uint64(fp[3])<<24
	return c.shards[v&c.mask]
}

// Do answers the fingerprint from the cache, or coalesces onto an
// in-flight computation, or runs compute itself and stores the result.
// The returned body must be treated as immutable by every caller — hits
// and coalesced waiters all share one slice.
//
// Coalescing semantics: exactly one caller (the leader) runs compute;
// it runs to completion regardless of any individual waiter's context —
// a waiter whose ctx is cancelled mid-flight abandons the wait with its
// own ctx.Err() and never perturbs the shared result. The leader's
// compute is expected to be bound to a detached context by the caller
// (the serving layer derives one from the request with cancellation
// removed), so a leader's client hanging up cannot poison N waiters. A
// compute error is returned to the leader and every still-attached
// waiter, and is never cached — the next request retries.
func (c *Cache) Do(ctx context.Context, fp Fingerprint, compute func() ([]byte, error)) ([]byte, Disposition, error) {
	if c == nil {
		body, err := compute()
		return body, Bypass, err
	}
	sh := c.shardFor(fp)
	sh.mu.Lock()
	if el, ok := sh.items[fp]; ok {
		sh.ll.MoveToFront(el)
		body := el.Value.(*entry).body
		sh.mu.Unlock()
		c.hits.Add(1)
		return body, Hit, nil
	}
	if fl, ok := sh.flights[fp]; ok {
		fl.waiters.Add(1)
		sh.mu.Unlock()
		defer fl.waiters.Add(-1)
		select {
		case <-fl.done:
			c.coalesced.Add(1)
			return fl.body, Coalesced, fl.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[fp] = fl
	sh.mu.Unlock()

	body, err := compute()
	fl.body, fl.err = body, err

	sh.mu.Lock()
	delete(sh.flights, fp)
	if err == nil && body != nil {
		if c.insertLocked(sh, fp, body) {
			c.sets.Add(1)
		}
	}
	sh.mu.Unlock()
	close(fl.done)
	c.misses.Add(1)
	return body, Miss, err
}

// Get answers the fingerprint from the stored entries alone (no
// coalescing, no compute). Mostly for tests and introspection.
func (c *Cache) Get(fp Fingerprint) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[fp]; ok {
		sh.ll.MoveToFront(el)
		return el.Value.(*entry).body, true
	}
	return nil, false
}

// insertLocked adds (or refreshes) an entry and evicts from the LRU
// tail until the shard is back under both bounds. An entry bigger than
// the whole shard budget is refused rather than evicting everything.
func (c *Cache) insertLocked(sh *shard, fp Fingerprint, body []byte) bool {
	cost := int64(len(body)) + entryOverhead
	if cost > sh.maxBytes {
		return false
	}
	if el, ok := sh.items[fp]; ok {
		// A concurrent leader already stored this fingerprint (possible
		// when a Purge raced between flight removal and insert); refresh.
		old := el.Value.(*entry)
		sh.bytes += int64(len(body)) - int64(len(old.body))
		old.body = body
		sh.ll.MoveToFront(el)
	} else {
		sh.items[fp] = sh.ll.PushFront(&entry{fp: fp, body: body})
		sh.bytes += cost
	}
	for sh.bytes > sh.maxBytes || sh.ll.Len() > sh.maxEntries {
		back := sh.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		sh.ll.Remove(back)
		delete(sh.items, ev.fp)
		sh.bytes -= int64(len(ev.body)) + entryOverhead
		c.evictions.Add(1)
	}
	return true
}

// Purge drops every stored entry. The serving layer calls it after a
// successful snapshot hot-swap: the old epoch's entries are already
// unreachable from new traffic (the epoch is part of the fingerprint),
// so this is memory hygiene, not a correctness requirement. In-flight
// computations are not interrupted; one finishing after the purge may
// re-insert its (old-epoch, still-correct-for-its-requester) entry,
// which ages out through normal LRU pressure.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.ll.Init()
		sh.items = make(map[Fingerprint]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
	}
	c.purges.Add(1)
}

// Bypassed counts one request that skipped the cache (no fingerprint).
func (c *Cache) Bypassed() {
	if c != nil {
		c.bypasses.Add(1)
	}
}

// Stats is a point-in-time snapshot of the cache's counters and
// occupancy.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Sets      int64 `json:"sets"`
	Evictions int64 `json:"evictions"`
	Purges    int64 `json:"purges"`
	Bypasses  int64 `json:"bypasses"`
	// Waiting is the number of callers currently parked on in-flight
	// computations (coalesced requests that have not completed yet).
	Waiting int64 `json:"waiting,omitempty"`
	// HitRate is Hits / (Hits + Misses + Coalesced); coalesced requests
	// count toward the denominator but not as hits — they did wait for
	// engine work, just not their own.
	HitRate float64 `json:"hit_rate"`
}

// Snapshot assembles the live stats (zero value for a nil cache).
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Sets:      c.sets.Load(),
		Evictions: c.evictions.Load(),
		Purges:    c.purges.Load(),
		Bypasses:  c.bypasses.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += sh.ll.Len()
		st.Bytes += sh.bytes
		st.MaxBytes += sh.maxBytes
		for _, fl := range sh.flights {
			st.Waiting += fl.waiters.Load()
		}
		sh.mu.Unlock()
	}
	if n := st.Hits + st.Misses + st.Coalesced; n > 0 {
		st.HitRate = float64(st.Hits) / float64(n)
	}
	return st
}
