// Package qcache is the serving tier's query-result cache: a canonical
// query fingerprint, a sharded byte-bounded LRU over marshaled search
// responses, and singleflight coalescing of concurrent identical
// requests.
//
// The design splits correctness from freshness:
//
//   - Correctness is byte-identity, not TTL. A cache entry is the exact
//     marshaled SearchResponse the engine produced for the fingerprint's
//     equivalence class, and the fingerprint includes the snapshot epoch,
//     so an entry can never be served against a different engine state.
//     Entries therefore never expire by time — they are valid for as
//     long as their epoch's engine is the serving engine, and they become
//     unreachable (wrong epoch, hence wrong fingerprint) the instant a
//     hot-swap lands.
//
//   - The fingerprint canonicalizes the query into the same kind of
//     frame the engine evaluates it in (a diameter pair normalized onto
//     ((0,0),(1,0)), with a placement-invariant anchor choice — see
//     canonicalShape), so translated / rotated / scaled duplicates of
//     one query — the similarity transforms retrieval is invariant
//     under — collide onto one entry instead of recomputing the same
//     answer per placement.
//
// See DESIGN.md §4.11 for the full argument.
package qcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	geosir "repro"
	"repro/internal/geom"
)

// Fingerprint identifies one equivalence class of search requests under
// a fixed snapshot epoch. It is a SHA-256 over a canonical encoding, so
// collisions between genuinely different requests are cryptographically
// negligible and the cache never has to store keys for comparison.
type Fingerprint [sha256.Size]byte

// quantum is the grid the canonical vertex stream is snapped to before
// hashing. Canonical coordinates live in the unit-diameter frame (the
// lune around [0,1]×[-1,1]), where the float noise of normalizing two
// placements of the same shape is ~1e-15; a 1e-9 grid absorbs that noise
// while keeping genuinely different shapes (which differ at ≥ the
// engine's own 1e-9 geometric slack) apart. Quantization can split two
// equivalent queries that straddle a grid boundary — that costs a cache
// miss, never a wrong answer.
const quantum = 1e9

// fpVersion tags the encoding so a future change to the fingerprint
// definition cannot alias entries produced by an older geosird.
const fpVersion = "GSIRQFP1"

// SearchFingerprint returns the fingerprint of a search request against
// the given snapshot epoch. ok is false when the request cannot be
// canonicalized (degenerate query, empty sketch, NaN coordinates, an
// unknown mode): such requests bypass the cache and let the engine
// produce its usual error or result.
//
// The fingerprint covers everything that can change the response bytes —
// the canonical vertex stream of every query shape, K, Mode, Ann, and
// the epoch — and deliberately omits the scheduling knobs (Exec, the
// MaxWorkers cap, and the deprecated workers alias), which only change
// how the work is scheduled, never what is returned.
func SearchFingerprint(req geosir.SearchRequest, epoch uint64) (Fingerprint, bool) {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(fpVersion))
	u64(epoch)
	u64(uint64(int64(req.K)))
	u64(uint64(int64(req.Mode)))
	u64(uint64(int64(req.Ann)))

	switch req.Mode {
	case geosir.ModeAuto, geosir.ModeExact, geosir.ModeApproximate:
		if !hashShape(h, u64, req.Query) {
			return Fingerprint{}, false
		}
	case geosir.ModeSketch:
		if len(req.Sketch) == 0 {
			return Fingerprint{}, false
		}
		// Sketch shapes are order-significant: PerShape distances come
		// back in request order.
		u64(uint64(len(req.Sketch)))
		for _, q := range req.Sketch {
			if !hashShape(h, u64, q) {
				return Fingerprint{}, false
			}
		}
	default:
		return Fingerprint{}, false
	}

	var fp Fingerprint
	h.Sum(fp[:0])
	return fp, true
}

// hashShape canonicalizes one query shape and feeds its quantized
// normalized vertex stream to the hash. It returns false when the shape
// cannot be canonicalized.
func hashShape(h hash.Hash, u64 func(uint64), q geosir.Shape) bool {
	cq, ok := canonicalShape(q)
	if !ok {
		return false
	}
	u64(uint64(len(cq.Pts)))
	closed := uint64(0)
	if cq.Closed {
		closed = 1
	}
	u64(closed)
	for _, p := range cq.Pts {
		qx, ok1 := quantize(p.X)
		qy, ok2 := quantize(p.Y)
		if !ok1 || !ok2 {
			return false
		}
		u64(uint64(qx))
		u64(uint64(qy))
	}
	return true
}

// maxFingerprintPts bounds the brute-force anchor-pair scan below.
// Query shapes are user sketches of at most a few hundred vertices;
// anything larger bypasses the cache rather than paying O(n²) here.
const maxFingerprintPts = 512

// canonicalShape maps a query shape into the same kind of canonical
// frame the engine evaluates it in (NormalizeCanonical: a diameter pair
// onto ((0,0),(1,0))) — but with a *placement-invariant* choice of the
// anchor pair. The engine's own Diameter() breaks exact ties (a square
// has two equal diagonals) by float noise, so two placements of one
// symmetric shape can normalize into different frames; that is harmless
// for distance computation (the measure is frame-invariant) but fatal
// for a fingerprint. Here the anchor is the lexicographically first
// vertex pair (by original index) whose squared length is within a
// 1e-9 relative tolerance of the maximum: exact ties sit ~1e-15 apart
// across placements, far inside the tolerance, so every placement picks
// the same pair. A genuinely near-tied pair straddling the tolerance
// can split an equivalence class — a cache miss, never a wrong answer.
func canonicalShape(q geosir.Shape) (geom.Poly, bool) {
	if len(q.Pts) < 2 || len(q.Pts) > maxFingerprintPts {
		return geom.Poly{}, false
	}
	for _, p := range q.Pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return geom.Poly{}, false
		}
	}
	var d2max float64
	for i := 0; i < len(q.Pts); i++ {
		for j := i + 1; j < len(q.Pts); j++ {
			if d2 := q.Pts[i].Dist2(q.Pts[j]); d2 > d2max {
				d2max = d2
			}
		}
	}
	if math.Sqrt(d2max) <= geom.Eps {
		return geom.Poly{}, false // degenerate: zero diameter
	}
	cut := d2max * (1 - 1e-9)
	for i := 0; i < len(q.Pts); i++ {
		for j := i + 1; j < len(q.Pts); j++ {
			if q.Pts[i].Dist2(q.Pts[j]) >= cut {
				tr, err := geom.NormalizeOnto(q.Pts[i], q.Pts[j])
				if err != nil {
					return geom.Poly{}, false
				}
				return q.Transform(tr), true
			}
		}
	}
	return geom.Poly{}, false // unreachable: the max pair passes its own cut
}

// quantize snaps a canonical coordinate onto the fingerprint grid.
// Canonical coordinates are bounded by the lune (|x|,|y| ≤ 2 with slack),
// so the scaled value always fits an int64; out-of-range or non-finite
// values (a degenerate normalization) refuse to fingerprint.
func quantize(v float64) (int64, bool) {
	s := math.Round(v * quantum)
	if math.IsNaN(s) || s > math.MaxInt64 || s < math.MinInt64 {
		return 0, false
	}
	return int64(s), true
}
