package sched

import (
	"sync"
	"testing"
)

func TestWidthAtTable(t *testing.T) {
	cases := []struct {
		name                   string
		parts                  int
		pol                    Policy
		max, load, cores, want int
	}{
		// Degenerate part counts never fan out.
		{"one part", 1, Auto, 0, 1, 8, 1},
		{"zero parts", 0, Fanout, 0, 1, 8, 1},

		// Sequential is unconditional.
		{"sequential idle", 8, Sequential, 0, 1, 8, 1},
		{"sequential ignores cap", 8, Sequential, 4, 1, 8, 1},

		// Fanout is full width regardless of load or cores.
		{"fanout idle", 8, Fanout, 0, 1, 8, 8},
		{"fanout loaded", 8, Fanout, 0, 64, 1, 8},
		{"fanout one core", 8, Fanout, 0, 1, 1, 8},
		{"fanout capped", 8, Fanout, 3, 1, 8, 3},

		// Auto at idle reproduces the old default: min(parts, cores).
		{"auto idle few shards", 2, Auto, 0, 1, 8, 2},
		{"auto idle many shards", 16, Auto, 0, 1, 8, 8},
		{"auto idle one core", 8, Auto, 0, 1, 1, 1},

		// Auto under load shares cores across requests.
		{"auto two requests", 8, Auto, 0, 2, 8, 4},
		{"auto saturated", 8, Auto, 0, 8, 8, 1},
		{"auto oversubscribed", 8, Auto, 0, 64, 8, 1},
		{"auto load rounds down", 7, Auto, 0, 3, 8, 2},
		{"auto capped", 16, Auto, 3, 1, 8, 3},

		// Defensive clamps.
		{"zero cores", 8, Auto, 0, 1, 0, 1},
		{"zero load treated as one", 8, Auto, 0, 0, 8, 8},
	}
	for _, tc := range cases {
		if got := WidthAt(tc.parts, tc.pol, tc.max, tc.load, tc.cores); got != tc.want {
			t.Errorf("%s: WidthAt(%d, %v, max=%d, load=%d, cores=%d) = %d, want %d",
				tc.name, tc.parts, tc.pol, tc.max, tc.load, tc.cores, got, tc.want)
		}
	}
}

func TestEnterReleaseGauge(t *testing.T) {
	var p Planner
	if got := p.InFlight(); got != 0 {
		t.Fatalf("fresh gauge = %d, want 0", got)
	}
	r1 := p.Enter()
	r2 := p.Enter()
	if got := p.InFlight(); got != 2 {
		t.Fatalf("gauge after two Enter = %d, want 2", got)
	}
	r1()
	r1() // double release must be a no-op
	if got := p.InFlight(); got != 1 {
		t.Fatalf("gauge after release (x2) = %d, want 1", got)
	}
	r2()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("gauge after all released = %d, want 0", got)
	}
}

func TestWidthRecordsPlans(t *testing.T) {
	var p Planner
	if w := p.Width(8, Fanout, 0); w != 8 {
		t.Fatalf("Fanout width = %d, want 8", w)
	}
	if w := p.Width(8, Sequential, 0); w != 1 {
		t.Fatalf("Sequential width = %d, want 1", w)
	}
	st := p.Stats()
	if st.PlansFanout != 1 || st.PlansSequential != 1 {
		t.Fatalf("plan counters = %+v, want 1 fanout / 1 sequential", st)
	}
}

func TestPlannerConcurrent(t *testing.T) {
	var p Planner
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := p.Enter()
			defer release()
			_ = p.Width(8, Auto, 0)
			_ = p.InFlight()
			_ = p.Stats()
		}()
	}
	wg.Wait()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("gauge after concurrent churn = %d, want 0", got)
	}
	st := p.Stats()
	if st.PlansFanout+st.PlansSequential != 32 {
		t.Fatalf("plan counters sum = %d, want 32", st.PlansFanout+st.PlansSequential)
	}
}
