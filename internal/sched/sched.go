// Package sched plans per-request execution width for shard fan-out.
//
// The planner answers one question: when a search request is about to fan
// out over N independent parts (shards, delta shards, sketch shapes), how
// many goroutines should it spend? The answer depends on who else is
// running. At idle, fanning out across all cores minimises latency. Under
// concurrent load, every request grabbing all cores just multiplies
// scheduler churn: the same cores finish the same total work faster when
// each request walks its parts sequentially and the cores are spent
// *across* requests instead. Cross-shard pruning (core.SharedBound) is
// width-independent, so a sequential walk visits the same parts with the
// same bound exchange and returns byte-identical results.
//
// Signals are deliberately cheap: an in-flight gauge incremented around
// engine Search calls, the part count, and GOMAXPROCS. No timestamps, no
// feedback loops — the plan must cost nanoseconds, not microseconds.
package sched

import (
	"runtime"
	"sync/atomic"
)

// Policy selects how a request's fan-out width is chosen.
type Policy int

const (
	// Auto picks the width from live signals: full fan-out at idle,
	// narrowing toward sequential as concurrent load approaches the
	// core count.
	Auto Policy = iota
	// Fanout forces one worker per part (capped only by an explicit
	// max-workers cap), regardless of load.
	Fanout
	// Sequential forces a single-goroutine walk over the parts.
	Sequential
)

// Stats is a snapshot of the planner's counters.
type Stats struct {
	// InFlight is the number of Search calls currently between Enter
	// and its release.
	InFlight int64
	// PlansFanout counts plans that chose width > 1.
	PlansFanout uint64
	// PlansSequential counts plans that chose width 1.
	PlansSequential uint64
}

// Planner tracks live load and turns (parts, policy, cap) into a width.
// The zero value is ready to use. All methods are safe for concurrent use.
type Planner struct {
	inFlight        atomic.Int64
	plansFanout     atomic.Uint64
	plansSequential atomic.Uint64
}

// Enter records one in-flight request and returns the paired release.
// Callers must invoke the returned func exactly once, typically deferred
// around the whole Search body so the gauge covers merge and verify work,
// not just the fan-out region.
func (p *Planner) Enter() func() {
	p.inFlight.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			p.inFlight.Add(-1)
		}
	}
}

// InFlight reports the current gauge value.
func (p *Planner) InFlight() int64 { return p.inFlight.Load() }

// Width plans the fan-out width for a request over parts independent
// units of work under pol, capped at max when max > 0. It reads the live
// gauge and GOMAXPROCS and records the chosen plan in the counters. The
// result is always in [1, parts] (and [1, max] when max > 0).
//
// The caller is expected to already be counted in the gauge (Enter before
// Width), so a lone request sees load 1 and gets the full fan-out.
func (p *Planner) Width(parts int, pol Policy, max int) int {
	w := WidthAt(parts, pol, max, int(p.inFlight.Load()), runtime.GOMAXPROCS(0))
	if w > 1 {
		p.plansFanout.Add(1)
	} else {
		p.plansSequential.Add(1)
	}
	return w
}

// Stats returns a snapshot of the gauge and plan counters.
func (p *Planner) Stats() Stats {
	return Stats{
		InFlight:        p.inFlight.Load(),
		PlansFanout:     p.plansFanout.Load(),
		PlansSequential: p.plansSequential.Load(),
	}
}

// WidthAt is the pure planning function behind Width: given the part
// count, policy, cap, current in-flight load, and core count, it returns
// the number of workers to spend. Exposed separately so the plan table is
// unit-testable without racing the live gauge.
//
//	Sequential           -> 1
//	Fanout               -> parts        (cap applies)
//	Auto, load <= 1      -> min(parts, cores)   — idle: today's behavior
//	Auto, load >  1      -> min(parts, cores/load), floor 1
func WidthAt(parts int, pol Policy, max, load, cores int) int {
	if parts <= 1 {
		return 1
	}
	if cores < 1 {
		cores = 1
	}
	var w int
	switch pol {
	case Sequential:
		return 1
	case Fanout:
		w = parts
	default: // Auto
		if load < 1 {
			load = 1
		}
		share := cores / load
		if share < 1 {
			share = 1
		}
		w = min(parts, share)
	}
	if max > 0 && w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}
