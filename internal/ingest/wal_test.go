package ingest

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/iofault"
)

func tri(dx float64) geom.Poly {
	return geom.NewPolygon(geom.Pt(dx, 0), geom.Pt(dx+1, 0), geom.Pt(dx+0.5, 1))
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	w, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 || truncated {
		t.Fatalf("fresh wal replayed %d ops, truncated=%v", len(ops), truncated)
	}
	ins := Op{Kind: OpInsert, Image: 7, Shapes: []geom.Poly{tri(0), tri(2)}}
	if err := w.Append(&ins); err != nil {
		t.Fatal(err)
	}
	del := Op{Kind: OpDelete, Image: 7}
	if err := w.Append(&del); err != nil {
		t.Fatal(err)
	}
	if ins.Seq != 1 || del.Seq != 2 {
		t.Fatalf("seqs = %d, %d", ins.Seq, del.Seq)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Close()

	w2, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if truncated {
		t.Fatal("clean wal reported truncated")
	}
	if len(ops) != 2 || ops[0].Kind != OpInsert || ops[0].Image != 7 || len(ops[0].Shapes) != 2 || ops[1].Kind != OpDelete {
		t.Fatalf("replayed %+v", ops)
	}
	if ops[0].Shapes[0].Pts[2] != geom.Pt(0.5, 1) {
		t.Fatalf("shape round-trip lost precision: %+v", ops[0].Shapes[0])
	}
	// Sequence numbering continues where the log left off.
	next := Op{Kind: OpDelete, Image: 9}
	if err := w2.Append(&next); err != nil {
		t.Fatal(err)
	}
	if next.Seq != 3 {
		t.Fatalf("resumed seq = %d", next.Seq)
	}
}

// A torn tail — the crash case — is cut on open, keeping every intact
// record, and appends resume cleanly.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	w, _, _, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(&Op{Kind: OpInsert, Image: i, Shapes: []geom.Poly{tri(float64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Simulate a crash mid-append: append garbage that looks like the
	// start of a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{40, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("torn tail not reported")
	}
	if len(ops) != 3 {
		t.Fatalf("replayed %d ops, want 3", len(ops))
	}
	op := Op{Kind: OpDelete, Image: 0}
	if err := w2.Append(&op); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, ops, truncated, err = OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(ops) != 4 || ops[3].Seq != 4 {
		t.Fatalf("post-repair replay: truncated=%v ops=%d", truncated, len(ops))
	}
}

// A corrupted checksum invalidates that record and everything after it.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	w, _, _, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(&Op{Kind: OpInsert, Image: i, Shapes: []geom.Poly{tri(float64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	sz := w.Size()
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sz-3] ^= 0xff // flip a byte inside the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(ops) != 2 {
		t.Fatalf("corrupt tail: truncated=%v ops=%d, want true/2", truncated, len(ops))
	}
}

// An injected append failure rolls the file back to the last intact
// boundary: nothing torn, nothing acknowledged, later appends fine.
func TestWALAppendFaultRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	var limit int64 = -1 // no fault until set
	wrap := func(w io.Writer) io.Writer {
		return writerFunc(func(p []byte) (int, error) {
			if limit >= 0 && int64(len(p)) > limit {
				n := int(limit)
				if n > 0 {
					n, _ = w.Write(p[:n]) // torn write: half the record lands
				}
				return n, iofault.ErrInjected
			}
			return w.Write(p)
		})
	}
	w, _, _, err := OpenWAL(path, Options{WrapWriter: wrap})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Op{Kind: OpInsert, Image: 1, Shapes: []geom.Poly{tri(0)}}); err != nil {
		t.Fatal(err)
	}
	limit = 10
	err = w.Append(&Op{Kind: OpInsert, Image: 2, Shapes: []geom.Poly{tri(1)}})
	if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	limit = -1
	op := Op{Kind: OpInsert, Image: 3, Shapes: []geom.Poly{tri(2)}}
	if err := w.Append(&op); err != nil {
		t.Fatal(err)
	}
	if op.Seq != 2 {
		t.Fatalf("seq after rollback = %d, want 2", op.Seq)
	}
	w.Close()
	_, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("rollback left a torn tail")
	}
	if len(ops) != 2 || ops[0].Image != 1 || ops[1].Image != 3 {
		t.Fatalf("replayed %+v", ops)
	}
}

func TestWALRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	w, _, _, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var all []Op
	for i := 0; i < 5; i++ {
		op := Op{Kind: OpInsert, Image: i, Shapes: []geom.Poly{tri(float64(i))}}
		if err := w.Append(&op); err != nil {
			t.Fatal(err)
		}
		all = append(all, op)
	}
	// Compaction folded the first three: keep the tail.
	if err := w.Rewrite(all[3:]); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len after rewrite = %d", w.Len())
	}
	op := Op{Kind: OpDelete, Image: 4}
	if err := w.Append(&op); err != nil {
		t.Fatal(err)
	}
	if op.Seq != 6 {
		t.Fatalf("seq after rewrite = %d, want 6", op.Seq)
	}
	w.Close()
	_, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(ops) != 3 {
		t.Fatalf("truncated=%v ops=%d", truncated, len(ops))
	}
	if ops[0].Image != 3 || ops[0].Seq != 4 || ops[2].Kind != OpDelete {
		t.Fatalf("replayed %+v", ops)
	}
}

// A failed rewrite leaves the original log fully intact.
func TestWALRewriteFaultKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "DELTA.wal")
	fail := false
	wrap := func(w io.Writer) io.Writer {
		return writerFunc(func(p []byte) (int, error) {
			if fail {
				return 0, iofault.ErrInjected
			}
			return w.Write(p)
		})
	}
	w, _, _, err := OpenWAL(path, Options{WrapWriter: wrap})
	if err != nil {
		t.Fatal(err)
	}
	var all []Op
	for i := 0; i < 3; i++ {
		op := Op{Kind: OpInsert, Image: i, Shapes: []geom.Poly{tri(float64(i))}}
		if err := w.Append(&op); err != nil {
			t.Fatal(err)
		}
		all = append(all, op)
	}
	fail = true
	if err := w.Rewrite(all[2:]); !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	w.Close()
	_, ops, truncated, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(ops) != 3 {
		t.Fatalf("after failed rewrite: truncated=%v ops=%d, want clean 3", truncated, len(ops))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
