package ingest

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func square(dx float64) geom.Poly {
	return geom.NewPolygon(geom.Pt(dx, 0), geom.Pt(dx+1, 0), geom.Pt(dx+1, 1), geom.Pt(dx, 1))
}

func newTestDelta(t *testing.T, gidBase int) *Delta {
	t.Helper()
	d, err := NewDelta(core.DefaultOptions(), 128, gidBase)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeltaInsertMatchDelete(t *testing.T) {
	d := newTestDelta(t, 10)
	if err := d.Insert(100, []geom.Poly{square(0), tri(0)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(101, []geom.Poly{tri(5)}); err != nil {
		t.Fatal(err)
	}
	if d.NumImages() != 2 || d.NumShapes() != 3 {
		t.Fatalf("images=%d shapes=%d", d.NumImages(), d.NumShapes())
	}
	if d.NextGID() != 13 {
		t.Fatalf("NextGID = %d, want 13", d.NextGID())
	}
	// Duplicate insert is rejected.
	if err := d.Insert(100, []geom.Poly{square(2)}); err == nil {
		t.Fatal("duplicate image insert accepted")
	}
	ms, err := d.Match(context.Background(), square(0), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].GID != 10 || ms[0].ImageID != 100 {
		t.Fatalf("matches %+v", ms)
	}
	if ms[0].Distance > 1e-9 {
		t.Fatalf("exact copy distance %v", ms[0].Distance)
	}
	// Triangle query: both triangles at distance ~0, tie broken by GID.
	ms, err = d.Match(context.Background(), tri(0), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].GID >= ms[1].GID && ms[0].Distance == ms[1].Distance {
		t.Fatalf("order %+v", ms)
	}

	n, found, err := d.Delete(100)
	if err != nil || !found || n != 2 {
		t.Fatalf("Delete = (%d,%v,%v)", n, found, err)
	}
	if d.NumImages() != 1 || d.NumShapes() != 1 {
		t.Fatalf("after delete images=%d shapes=%d", d.NumImages(), d.NumShapes())
	}
	// The reservation survives: next insert continues after gid 12.
	if err := d.Insert(102, []geom.Poly{square(9)}); err != nil {
		t.Fatal(err)
	}
	ms, err = d.Match(context.Background(), square(9), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].GID != 13 || ms[0].ImageID != 102 {
		t.Fatalf("post-delete insert matched %+v", ms)
	}
	// Deleting twice reports not-found.
	if _, found, _ := d.Delete(100); found {
		t.Fatal("double delete reported found")
	}
	// Re-insert after delete is allowed and gets fresh gids.
	if err := d.Insert(100, []geom.Poly{tri(1)}); err != nil {
		t.Fatal(err)
	}
	if !d.Has(100) {
		t.Fatal("re-inserted image not live")
	}
}

func TestDeltaCandidatesMatchFrozenBuckets(t *testing.T) {
	d := newTestDelta(t, 0)
	shapes := []geom.Poly{square(0), tri(0), square(3), tri(7)}
	for i, p := range shapes {
		if err := d.Insert(i, []geom.Poly{p}); err != nil {
			t.Fatal(err)
		}
	}
	pq, err := core.PrepareQuery(square(0))
	if err != nil {
		t.Fatal(err)
	}
	quad := d.Family().Characteristic(pq.Entry().Poly.Pts)
	ids := d.Candidates(quad, 0)
	if len(ids) == 0 {
		t.Fatal("no candidates for an exact-copy query")
	}
	// Deleted shapes drop out of the candidate set even though the table
	// still holds them.
	if _, _, err := d.Delete(0); err != nil {
		t.Fatal(err)
	}
	for _, id := range d.Candidates(quad, 0) {
		if d.ImageOf(id) == 0 {
			t.Fatal("deleted image still a candidate")
		}
	}
	// Bounded scoring of a surviving candidate agrees with a frozen Base.
	b := core.NewBase(core.DefaultOptions())
	bid, err := b.AddShape(2, square(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	want, wantOK, err := b.ShapeDistancePreparedBounded(bid, pq, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var got Match
	var gotOK bool
	for _, id := range d.Candidates(quad, 1) {
		if d.ImageOf(id) == 2 {
			got, gotOK = d.ScoreBounded(id, pq, 0.8)
		}
	}
	if gotOK != wantOK || (wantOK && got.Distance != want) {
		t.Fatalf("delta score (%v,%v) != base (%v,%v)", got.Distance, gotOK, want, wantOK)
	}
}

func TestDeltaSealAndSnapshot(t *testing.T) {
	d := newTestDelta(t, 0)
	if err := d.Insert(1, []geom.Poly{square(0)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, []geom.Poly{tri(0), tri(2)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Delete(1); err != nil {
		t.Fatal(err)
	}
	d.Seal()
	if err := d.Insert(3, []geom.Poly{square(5)}); !errors.Is(err, ErrSealed) {
		t.Fatalf("insert into sealed delta: %v", err)
	}
	if _, _, err := d.Delete(2); !errors.Is(err, ErrSealed) {
		t.Fatalf("delete in sealed delta: %v", err)
	}
	// Sealed deltas still serve queries.
	ms, err := d.Match(context.Background(), tri(0), 1, false)
	if err != nil || len(ms) != 1 {
		t.Fatalf("sealed match: %v %v", ms, err)
	}
	snap := d.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d images", len(snap))
	}
	if !snap[0].Deleted || snap[0].NumShapes != 1 || snap[0].Shapes != nil {
		t.Fatalf("deleted image state %+v", snap[0])
	}
	if snap[1].Deleted || len(snap[1].Shapes) != 2 || snap[1].ID != 2 {
		t.Fatalf("live image state %+v", snap[1])
	}
}

// ImageOf is exercised above; keep the accessor honest for unknown ids.
func TestDeltaSketchTable(t *testing.T) {
	d := newTestDelta(t, 0)
	if err := d.Insert(1, []geom.Poly{square(0), tri(0)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, []geom.Poly{tri(4)}); err != nil {
		t.Fatal(err)
	}
	tab, err := d.SketchTable(context.Background(), tri(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab) != 2 {
		t.Fatalf("sketch table %v", tab)
	}
	if tab[1] > 1e-9 {
		t.Fatalf("image 1 best distance %v", tab[1])
	}
}
