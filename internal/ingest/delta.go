package ingest

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geohash"
	"repro/internal/geom"
)

// Delta is the mutable shard of a sharded engine: a core.Dynamic holding
// the images inserted since the last compaction, plus its own geometric
// hash table over the shared deterministic curve family so the delta
// participates in the approximate (hashing) path with the same buckets a
// frozen shard would hold. All methods are safe for concurrent use; the
// Dynamic's internal rebuild is pinned off because compaction — freezing
// the delta into a real immutable shard — is this design's rebuild.
//
// Global shape ids are assigned here, at insert time, by the same rule
// the manifest replay uses after compaction (sequential from the id
// space's current end, in insert order, with deleted images keeping
// their reservation), so a shape's id is identical before and after the
// delta it was born in gets compacted — and identical to what a fresh
// unpartitioned Engine over the same AddImage sequence would assign.
type Delta struct {
	mu     sync.RWMutex
	opts   core.Options
	dyn    *core.Dynamic
	family *geohash.Family
	table  *geohash.Table

	images  []imageRec
	byImage map[int]int // image id → latest images index

	gids       []int // dyn shape id → global shape id
	imageOf    []int // dyn shape id → image id
	deletedDyn []bool

	liveImages int
	liveShapes int
	entries    int // normalized copies across live shapes
	nextGID    int
	sealed     bool
}

// imageRec is one Insert call, in order — the delta's slice of the
// manifest image log.
type imageRec struct {
	ID      int
	GIDBase int
	DynIDs  []int
	Deleted bool
}

// ImageState is one delta image as seen by compaction: live images
// carry their original polygons (to be fed to the new shard's
// AddImage), deleted ones only their shape count (their global-id
// reservation must survive in the manifest).
type ImageState struct {
	ID        int
	Deleted   bool
	NumShapes int
	Shapes    []geom.Poly // nil when Deleted
}

// Match is one delta query result, already in global id space.
type Match struct {
	GID        int
	ImageID    int
	Distance   float64
	Continuous float64
}

// NewDelta creates an empty delta. gidBase is the engine's current
// global-id high-water mark (core.ShardMap.NumGlobal plus any earlier
// deltas' reservations); hashCurves sizes the curve family exactly like
// the frozen shards' (it must match for bucket identity).
func NewDelta(opts core.Options, hashCurves, gidBase int) (*Delta, error) {
	family, err := geohash.NewFamily(hashCurves)
	if err != nil {
		return nil, err
	}
	dyn := core.NewDynamic(opts)
	// Compaction replaces the Dynamic's internal rebuild; pinning it keeps
	// every live shape in the overflow area, where the bounded scorer and
	// the continuous measure have their cached oracles.
	dyn.MinRebuild = int(^uint(0) >> 1)
	return &Delta{
		opts:    opts,
		dyn:     dyn,
		family:  family,
		table:   geohash.NewTableWith(family),
		byImage: make(map[int]int),
		nextGID: gidBase,
	}, nil
}

// ErrSealed is returned by mutations against a delta that a compaction
// has already claimed.
var ErrSealed = fmt.Errorf("ingest: delta is sealed")

// Insert adds an image's shapes. The insert is atomic: on any shape's
// validation failure the already-inserted prefix is rolled back and the
// delta is unchanged. Inserting an image id the delta already holds live
// is an error (the caller checks the frozen shards).
func (d *Delta) Insert(image int, shapes []geom.Poly) error {
	if len(shapes) == 0 {
		return fmt.Errorf("ingest: image %d has no shapes", image)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sealed {
		return ErrSealed
	}
	if i, ok := d.byImage[image]; ok && !d.images[i].Deleted {
		return fmt.Errorf("ingest: image %d already present", image)
	}
	rec := imageRec{ID: image, GIDBase: d.nextGID, DynIDs: make([]int, 0, len(shapes))}
	for _, p := range shapes {
		id, err := d.dyn.Insert(image, p)
		if err != nil {
			d.rollbackShapesLocked(rec.DynIDs)
			return err
		}
		rec.DynIDs = append(rec.DynIDs, id)
		for len(d.gids) <= id {
			d.gids = append(d.gids, -1)
			d.imageOf = append(d.imageOf, -1)
			d.deletedDyn = append(d.deletedDyn, false)
		}
		d.gids[id] = d.nextGID + len(rec.DynIDs) - 1
		d.imageOf[id] = image
		// Mirror Engine.Freeze: hash the canonical copy; degenerate shapes
		// that normalization rejects simply stay out of the table.
		if ce, err := core.NormalizeCanonical(p); err == nil {
			quad := d.family.Characteristic(ce.Poly.Pts)
			if err := d.table.Insert(id, quad); err != nil {
				d.rollbackShapesLocked(rec.DynIDs)
				return fmt.Errorf("ingest: hashing shape %d: %w", id, err)
			}
		}
	}
	d.nextGID += len(rec.DynIDs)
	d.byImage[image] = len(d.images)
	d.images = append(d.images, rec)
	d.liveImages++
	d.liveShapes += len(rec.DynIDs)
	for _, id := range rec.DynIDs {
		if es, _, ok := d.dyn.OverflowCopies(id); ok {
			d.entries += len(es)
		}
	}
	return nil
}

// rollbackShapesLocked undoes a failed Insert's already-indexed prefix:
// the dyn shapes are deleted and their id mappings cleared, so the
// global ids they briefly held (nextGID never advanced) are free for the
// next insert with no live phantom claiming them. Any hash-table entries
// stay behind tombstoned — deletedDyn filters them out of every lookup,
// exactly as after Delete. Caller holds mu.
func (d *Delta) rollbackShapesLocked(dynIDs []int) {
	for _, id := range dynIDs {
		_ = d.dyn.Delete(id)
		d.deletedDyn[id] = true
		d.gids[id] = -1
		d.imageOf[id] = -1
	}
}

// RollbackLast removes the delta's most recent Insert entirely,
// releasing its global-id reservation. The caller must pass the image
// id of the insert it is undoing, and must serialize mutations (the
// ingestion layer does): only then is the record guaranteed to be the
// delta's last, which is what makes un-reserving the ids safe. Used
// when the write-ahead append for an insert fails — the insert was
// never acknowledged, so no trace of it may survive.
func (d *Delta) RollbackLast(image int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.images)
	if n == 0 || d.images[n-1].ID != image || d.images[n-1].Deleted {
		return
	}
	rec := d.images[n-1]
	for _, id := range rec.DynIDs {
		if es, _, ok := d.dyn.OverflowCopies(id); ok {
			d.entries -= len(es)
		}
		_ = d.dyn.Delete(id)
		d.deletedDyn[id] = true
		d.gids[id] = -1
		d.imageOf[id] = -1
	}
	d.images = d.images[:n-1]
	d.liveImages--
	d.liveShapes -= len(rec.DynIDs)
	d.nextGID = rec.GIDBase
	// Restore the previous record for this image id, if any (an earlier
	// deleted incarnation), so Has/ShapeCount stay coherent.
	delete(d.byImage, image)
	for i := n - 2; i >= 0; i-- {
		if d.images[i].ID == image {
			d.byImage[image] = i
			break
		}
	}
}

// Delete tombstones an image the delta holds live. It reports the
// image's shape count and whether it was found; the global-id
// reservation is kept (the compacted manifest records the image as
// deleted), so later shapes' ids never shift.
func (d *Delta) Delete(image int) (int, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sealed {
		return 0, false, ErrSealed
	}
	i, ok := d.byImage[image]
	if !ok || d.images[i].Deleted {
		return 0, false, nil
	}
	rec := &d.images[i]
	for _, id := range rec.DynIDs {
		if es, _, ok := d.dyn.OverflowCopies(id); ok {
			d.entries -= len(es)
		}
		_ = d.dyn.Delete(id)
		d.deletedDyn[id] = true
	}
	rec.Deleted = true
	d.liveImages--
	d.liveShapes -= len(rec.DynIDs)
	return len(rec.DynIDs), true, nil
}

// Has reports whether the delta holds the image live.
func (d *Delta) Has(image int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	i, ok := d.byImage[image]
	return ok && !d.images[i].Deleted
}

// NumImages returns the live image count.
func (d *Delta) NumImages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.liveImages
}

// NumShapes returns the live shape count.
func (d *Delta) NumShapes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.liveShapes
}

// NumEntries returns the normalized-copy count across live shapes.
func (d *Delta) NumEntries() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.entries
}

// NextGID returns the global-id high-water mark after this delta's
// reservations — the gid base for a successor delta.
func (d *Delta) NextGID() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nextGID
}

// Seal makes the delta read-only. A compaction seals the delta it is
// folding while a fresh active delta takes over new writes; queries keep
// reading the sealed delta until the hot-swap.
func (d *Delta) Seal() {
	d.mu.Lock()
	d.sealed = true
	d.mu.Unlock()
}

// Match answers the exact single-shape query against the delta's live
// shapes, in global id space, sorted by (Distance, GID). withContinuous
// additionally scores the top results' continuous measure — the exact
// path needs it (frozen shards report it for their local top-k), the
// hashing paths do not.
func (d *Delta) Match(ctx context.Context, q geom.Poly, k int, withContinuous bool) ([]Match, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.liveShapes == 0 {
		return nil, nil
	}
	if k > d.liveShapes {
		k = d.liveShapes
	}
	ms, _, err := d.dyn.MatchCtx(ctx, q, k)
	if err != nil {
		return nil, err
	}
	var pq *core.PreparedQuery
	if withContinuous {
		if pq, err = core.PrepareQuery(q); err != nil {
			return nil, err
		}
	}
	out := make([]Match, 0, len(ms))
	for _, m := range ms {
		om := Match{GID: d.gids[m.ShapeID], ImageID: d.imageOf[m.ShapeID], Distance: m.DistVertex}
		if withContinuous {
			c, err := d.dyn.ContinuousDistance(m.ShapeID, m.EntryID, pq)
			if err != nil {
				return nil, err
			}
			om.Continuous = c
		}
		out = append(out, om)
	}
	// Dyn ids and gids grow together, so the (DistVertex, ShapeID) order
	// MatchCtx returns is already the (Distance, GID) order the k-way
	// merge expects.
	return out, nil
}

// Family returns the delta's curve family (identical across all shards).
func (d *Delta) Family() *geohash.Family { return d.family }

// Candidates returns the live delta shape ids bucketed with the query
// quadruple at the given curve radius — the delta's contribution to the
// approximate path's candidate union (and to the global widening
// decision).
func (d *Delta) Candidates(quad geohash.Quadruple, radius int) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := d.table.Lookup(quad, radius)
	out := ids[:0]
	for _, id := range ids {
		if !d.deletedDyn[id] {
			out = append(out, id)
		}
	}
	return out
}

// ScoreBounded scores one delta shape (by dyn id, as returned from
// Candidates) against a prepared query under an admissible cutoff,
// bit-identical to a frozen shard's scorer. The returned Match carries
// no continuous measure (the hashing paths never report one).
func (d *Delta) ScoreBounded(id int, pq *core.PreparedQuery, cutoff float64) (Match, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.deletedDyn) || d.deletedDyn[id] {
		return Match{}, false
	}
	dist, ok, err := d.dyn.ShapeDistancePreparedBounded(id, pq, cutoff)
	if err != nil || !ok {
		return Match{}, false
	}
	return Match{GID: d.gids[id], ImageID: d.imageOf[id], Distance: dist}, true
}

// GID maps a delta shape id to its global shape id (-1 if unknown).
func (d *Delta) GID(id int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.gids) {
		return -1
	}
	return d.gids[id]
}

// ImageOf maps a delta shape id to its image id (-1 if unknown).
func (d *Delta) ImageOf(id int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.imageOf) {
		return -1
	}
	return d.imageOf[id]
}

// SketchTable reduces an exhaustive match of one sketch shape to the
// best distance per live image — the delta's contribution to the sketch
// path's per-shape tables.
func (d *Delta) SketchTable(ctx context.Context, q geom.Poly) (map[int]float64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.liveShapes == 0 {
		return nil, nil
	}
	ms, _, err := d.dyn.MatchCtx(ctx, q, d.liveShapes)
	if err != nil {
		return nil, err
	}
	best := make(map[int]float64)
	for _, m := range ms {
		img := d.imageOf[m.ShapeID]
		if cur, ok := best[img]; !ok || m.DistVertex < cur {
			best[img] = m.DistVertex
		}
	}
	return best, nil
}

// Snapshot returns the delta's image log in insert order, for compaction
// and for the manifest: live images with their polygons, deleted ones
// with their shape counts only.
func (d *Delta) Snapshot() []ImageState {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ImageState, 0, len(d.images))
	for _, rec := range d.images {
		st := ImageState{ID: rec.ID, Deleted: rec.Deleted, NumShapes: len(rec.DynIDs)}
		if !rec.Deleted {
			st.Shapes = make([]geom.Poly, 0, len(rec.DynIDs))
			for _, id := range rec.DynIDs {
				s, err := d.dyn.Shape(id)
				if err != nil {
					continue // unreachable: live images keep live shapes
				}
				st.Shapes = append(st.Shapes, s.Poly)
			}
		}
		out = append(out, st)
	}
	return out
}

// ShapeCount returns the shape count of an image the delta holds (live
// or deleted) — manifest entries for deleted images still need it.
func (d *Delta) ShapeCount(image int) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	i, ok := d.byImage[image]
	if !ok {
		return 0, false
	}
	return len(d.images[i].DynIDs), true
}
