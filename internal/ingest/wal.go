// Package ingest is the live-ingestion layer of the sharded engine: a
// write-ahead log that makes inserts and deletes durable the moment they
// are acknowledged, and a small mutable delta shard (Delta, backed by
// core.Dynamic) that serves them to queries until a background
// compaction folds them into a frozen shard.
//
// The WAL is the crash-safety half of the LSM-style design (DESIGN.md
// §4.12): an acknowledged write exists either in the manifest (after
// compaction) or in the WAL (before), so a kill -9 at any instant loses
// nothing. Replay is idempotent — records already folded into the
// manifest are skipped by image id — which covers the window between
// the manifest rename (the compaction commit point) and the WAL
// rewrite that drops the folded prefix.
package ingest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/geom"
)

// walMagic heads every WAL file. The trailing byte versions the record
// encoding.
var walMagic = [8]byte{'G', 'S', 'I', 'R', 'W', 'A', 'L', '1'}

// maxRecordSize bounds one record's payload; anything larger is treated
// as corruption rather than an allocation request.
const maxRecordSize = 16 << 20

// OpKind discriminates WAL records.
type OpKind string

const (
	OpInsert OpKind = "insert"
	OpDelete OpKind = "delete"
)

// Op is one logged mutation. Seq is assigned by the WAL on append and
// strictly increases within a file; replay rejects regressions (they
// can only come from corruption, not torn tails).
type Op struct {
	Seq    uint64      `json:"seq"`
	Kind   OpKind      `json:"op"`
	Image  int         `json:"image"`
	Shapes []geom.Poly `json:"shapes,omitempty"`
}

// Options configures a WAL.
type Options struct {
	// NoSync skips the fsync after each append. Only tests and
	// throughput experiments should set it — an acknowledged write may
	// then be lost to a power cut (though never reordered or torn).
	NoSync bool
	// WrapWriter, when non-nil, interposes on every file writer the WAL
	// creates (the append stream and rewrite temp files) — the
	// internal/iofault injection point.
	WrapWriter func(io.Writer) io.Writer
}

// WAL is an append-only log of delta mutations with checksummed,
// length-prefixed records. It is not internally locked; the Ingestor
// serializes access.
type WAL struct {
	path string
	opts Options
	f    *os.File
	w    io.Writer
	seq  uint64 // last assigned sequence number
	n    int    // live record count in the file
	size int64
}

// OpenWAL opens (creating if absent) the log at path and replays it.
// The returned ops are every intact record in order; truncated reports
// whether a torn tail was found and cut (the crash-recovery case — the
// torn record was never acknowledged, so dropping it is correct).
func OpenWAL(path string, opts Options) (*WAL, []Op, bool, error) {
	ops, goodEnd, truncated, err := replay(path)
	if err != nil {
		return nil, nil, false, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("ingest: opening wal: %w", err)
	}
	if goodEnd == 0 {
		// Fresh (or fully torn) file: start from a clean header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("ingest: resetting wal: %w", err)
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("ingest: writing wal header: %w", err)
		}
		goodEnd = int64(len(walMagic))
	} else if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("ingest: truncating torn wal tail: %w", err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, err
	}
	w := &WAL{path: path, opts: opts, f: f, w: io.Writer(f), n: len(ops), size: goodEnd}
	if opts.WrapWriter != nil {
		w.w = opts.WrapWriter(f)
	}
	if len(ops) > 0 {
		w.seq = ops[len(ops)-1].Seq
	}
	return w, ops, truncated, nil
}

// replay scans the log, returning the intact records, the offset of the
// last intact record's end, and whether a torn/corrupt tail follows it.
// A missing file replays empty.
func replay(path string) (ops []Op, goodEnd int64, truncated bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("ingest: opening wal: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, 0, true, nil // shorter than a header: treat as empty
	}
	if magic != walMagic {
		return nil, 0, false, fmt.Errorf("ingest: %s is not a delta WAL (magic %q)", path, magic[:])
	}
	goodEnd = int64(len(walMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return ops, goodEnd, !errors.Is(err, io.EOF), nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecordSize {
			return ops, goodEnd, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return ops, goodEnd, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return ops, goodEnd, true, nil
		}
		var op Op
		if err := json.Unmarshal(payload, &op); err != nil {
			return ops, goodEnd, true, nil
		}
		if len(ops) > 0 && op.Seq <= ops[len(ops)-1].Seq {
			return nil, 0, false, fmt.Errorf("ingest: wal sequence regressed (%d after %d)", op.Seq, ops[len(ops)-1].Seq)
		}
		ops = append(ops, op)
		goodEnd += int64(len(hdr)) + int64(n)
	}
}

// Append assigns the op the next sequence number, writes it, and (unless
// NoSync) fsyncs before returning — the durability point of an
// acknowledged write. On a write error the file is truncated back to the
// last intact record so a failed append never leaves a torn middle.
func (w *WAL) Append(op *Op) error {
	w.seq++
	op.Seq = w.seq
	payload, err := json.Marshal(op)
	if err != nil {
		w.seq--
		return fmt.Errorf("ingest: encoding wal record: %w", err)
	}
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	if _, err := w.w.Write(rec); err != nil {
		// Roll back to the last intact boundary; the op was never
		// acknowledged, so it must not replay after a later crash.
		w.seq--
		_ = w.f.Truncate(w.size)
		_, _ = w.f.Seek(w.size, io.SeekStart)
		return fmt.Errorf("ingest: appending wal record: %w", err)
	}
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			// Same rollback as a failed write: the record is fully in the
			// file but was never acknowledged, so it must not survive to
			// replay — and w.size must stay the true intact boundary, or a
			// later append's write-error truncation would chop into
			// acknowledged records.
			w.seq--
			_ = w.f.Truncate(w.size)
			_, _ = w.f.Seek(w.size, io.SeekStart)
			return fmt.Errorf("ingest: syncing wal: %w", err)
		}
	}
	w.size += int64(len(rec))
	w.n++
	return nil
}

// Rewrite atomically replaces the log's contents with the given ops
// (keeping their sequence numbers), via temp file + fsync + rename +
// directory fsync — the same discipline as snapshot saves. It is called
// after a compaction commits to drop the folded prefix; a crash anywhere
// inside leaves either the old or the new log, and replay of the old one
// is idempotent against the new manifest.
func (w *WAL) Rewrite(ops []Op) error {
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(w.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ingest: creating wal rewrite temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	var out io.Writer = tmp
	if w.opts.WrapWriter != nil {
		out = w.opts.WrapWriter(tmp)
	}
	size := int64(len(walMagic))
	if _, err := out.Write(walMagic[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: rewriting wal: %w", err)
	}
	for i := range ops {
		payload, err := json.Marshal(&ops[i])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: encoding wal record: %w", err)
		}
		rec := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
		copy(rec[8:], payload)
		if _, err := out.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: rewriting wal: %w", err)
		}
		size += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: syncing rewritten wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: closing rewritten wal: %w", err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		return fmt.Errorf("ingest: publishing rewritten wal: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	// Swap the append handle to the new file.
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: reopening rewritten wal: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.w = io.Writer(f)
	if w.opts.WrapWriter != nil {
		w.w = w.opts.WrapWriter(f)
	}
	w.size = size
	w.n = len(ops)
	if len(ops) > 0 && ops[len(ops)-1].Seq > w.seq {
		w.seq = ops[len(ops)-1].Seq
	}
	return nil
}

// Len returns the number of live records.
func (w *WAL) Len() int { return w.n }

// Size returns the file size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }
