// Package chamfer implements the chamfer-matching baseline of the
// paper's related work (§1, [4, 8, 9]): a distance image is computed
// from the target's edge pixels, and a query contour is scored by the
// average distance-map value under its rasterized boundary. The paper's
// criticism — "gives quite accurate results but involves lengthy
// computations on every extracted contour per query" — is measurable
// here: chamfer matching rasterizes and scans a full distance map per
// (query, target) pair, while GeoSIR touches a polylogarithmic index.
//
// The distance transform is the classic two-pass 3–4 chamfer
// approximation of the Euclidean distance, on the same Raster type the
// extraction pipeline uses.
package chamfer

import (
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/geom"
)

// DistanceMap is a per-pixel distance field (in pixel units) to the
// nearest foreground pixel of the source raster.
type DistanceMap struct {
	W, H int
	d    []float32
}

// At returns the distance at (x, y); out-of-range coordinates return
// +Inf.
func (m *DistanceMap) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return math.Inf(1)
	}
	return float64(m.d[y*m.W+x])
}

// Transform computes the 3–4 chamfer distance transform of r's
// foreground. The result is scaled by 1/3 so values approximate Euclidean
// pixel distances. An error is returned when the raster has no foreground
// (the distance field would be infinite everywhere).
func Transform(r *extract.Raster) (*DistanceMap, error) {
	if r.Count() == 0 {
		return nil, fmt.Errorf("chamfer: empty raster")
	}
	const inf = float32(math.MaxFloat32 / 4)
	m := &DistanceMap{W: r.W, H: r.H, d: make([]float32, r.W*r.H)}
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if r.Get(x, y) {
				m.d[y*r.W+x] = 0
			} else {
				m.d[y*r.W+x] = inf
			}
		}
	}
	at := func(x, y int) float32 {
		if x < 0 || y < 0 || x >= m.W || y >= m.H {
			return inf
		}
		return m.d[y*m.W+x]
	}
	// Forward pass: upper-left mask (3 for edge, 4 for diagonal steps).
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := m.d[y*m.W+x]
			if w := at(x-1, y) + 3; w < v {
				v = w
			}
			if w := at(x, y-1) + 3; w < v {
				v = w
			}
			if w := at(x-1, y-1) + 4; w < v {
				v = w
			}
			if w := at(x+1, y-1) + 4; w < v {
				v = w
			}
			m.d[y*m.W+x] = v
		}
	}
	// Backward pass: lower-right mask.
	for y := m.H - 1; y >= 0; y-- {
		for x := m.W - 1; x >= 0; x-- {
			v := m.d[y*m.W+x]
			if w := at(x+1, y) + 3; w < v {
				v = w
			}
			if w := at(x, y+1) + 3; w < v {
				v = w
			}
			if w := at(x+1, y+1) + 4; w < v {
				v = w
			}
			if w := at(x-1, y+1) + 4; w < v {
				v = w
			}
			m.d[y*m.W+x] = v
		}
	}
	// Normalize 3–4 weights to ≈ Euclidean.
	for i := range m.d {
		m.d[i] /= 3
	}
	return m, nil
}

// Score computes the chamfer score of a contour against the distance
// map: the average map value over the contour sampled at `samples`
// boundary points (root mean is the common variant; the average matches
// the paper's description "minimize the sum of the values in the
// distance map that the contour hit").
func (m *DistanceMap) Score(contour geom.Poly, samples int) float64 {
	if samples <= 0 {
		samples = 4 * contour.NumVertices()
		if samples < 64 {
			samples = 64
		}
	}
	pts := contour.Resample(samples)
	if len(pts) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		x := int(math.Round(p.X))
		y := int(math.Round(p.Y))
		d := m.At(x, y)
		if math.IsInf(d, 1) {
			// Off-map points are clamped to the map border distance.
			d = float64(m.W + m.H)
		}
		sum += d
	}
	return sum / float64(len(pts))
}

// Matcher is the retrieval baseline: one distance map per stored image.
// Chamfer matching is not rotation invariant, so Query sweeps Rotations
// orientations of the contour and keeps the best — the standard remedy,
// and the reason the paper calls the method computationally lengthy: the
// per-query cost is #images × Rotations × contour samples, with no index
// to prune it.
type Matcher struct {
	maps   []*DistanceMap
	images []int
	// fitSize is the raster side used to normalize query contours onto
	// the maps.
	fitSize int
	// Rotations is the number of query orientations swept (default 32).
	Rotations int
}

// NewMatcher builds the per-image distance maps from the stored shapes
// (each image's shapes are stroked onto one raster of side `size`, scaled
// to fit).
func NewMatcher(images map[int][]geom.Poly, size int) (*Matcher, error) {
	if size < 16 {
		size = 128
	}
	m := &Matcher{fitSize: size, Rotations: 32}
	for id, shapes := range images {
		r, err := extract.NewRaster(size, size)
		if err != nil {
			return nil, err
		}
		for _, s := range shapes {
			r.DrawPolyline(fitTo(s, size))
		}
		dm, err := Transform(r)
		if err != nil {
			return nil, fmt.Errorf("chamfer: image %d: %w", id, err)
		}
		m.maps = append(m.maps, dm)
		m.images = append(m.images, id)
	}
	if len(m.maps) == 0 {
		return nil, fmt.Errorf("chamfer: no images")
	}
	return m, nil
}

// fitTo scales and centers a shape into a size×size raster with a 10%
// margin (chamfer matching is not scale invariant; this is the standard
// normalization applied before matching).
func fitTo(p geom.Poly, size int) geom.Poly {
	b := p.Bounds()
	ext := math.Max(b.Width(), b.Height())
	if ext == 0 {
		ext = 1
	}
	s := 0.8 * float64(size) / ext
	c := b.Center()
	half := float64(size) / 2
	out := p.Clone()
	for i := range out.Pts {
		out.Pts[i] = out.Pts[i].Sub(c).Scale(s).Add(geom.Pt(half, half))
	}
	return out
}

// Match is a baseline retrieval result.
type Match struct {
	ImageID int
	Score   float64 // average distance-map value; smaller is better
}

// Query scores the contour against every stored image (sweeping
// Rotations orientations) and returns the k best — the per-query full
// scan the paper criticizes.
func (m *Matcher) Query(contour geom.Poly, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("chamfer: k must be positive")
	}
	rot := m.Rotations
	if rot < 1 {
		rot = 1
	}
	// Pre-fit each orientation once; all maps share the frame.
	fitted := make([]geom.Poly, rot)
	for r := 0; r < rot; r++ {
		theta := 2 * math.Pi * float64(r) / float64(rot)
		q := contour.Clone()
		for i := range q.Pts {
			q.Pts[i] = q.Pts[i].Rotate(theta)
		}
		fitted[r] = fitTo(q, m.fitSize)
	}
	out := make([]Match, 0, len(m.maps))
	for i, dm := range m.maps {
		best := math.Inf(1)
		for r := 0; r < rot; r++ {
			if s := dm.Score(fitted[r], 0); s < best {
				best = s
			}
		}
		out = append(out, Match{ImageID: m.images[i], Score: best})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score < out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
