package chamfer

import (
	"math"
	"testing"

	"repro/internal/extract"
	"repro/internal/geom"
)

func TestTransformEmptyFails(t *testing.T) {
	r, _ := extract.NewRaster(10, 10)
	if _, err := Transform(r); err == nil {
		t.Error("empty raster should fail")
	}
}

func TestTransformSinglePoint(t *testing.T) {
	r, _ := extract.NewRaster(21, 21)
	r.Set(10, 10, true)
	m, err := Transform(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(10, 10) != 0 {
		t.Errorf("source distance = %v", m.At(10, 10))
	}
	// Horizontal neighbors: exactly 1, 2, ...
	if d := m.At(12, 10); math.Abs(d-2) > 1e-6 {
		t.Errorf("At(12,10) = %v, want 2", d)
	}
	// Diagonal: 3-4 chamfer gives 4/3 per diagonal step vs true √2≈1.414.
	if d := m.At(11, 11); math.Abs(d-4.0/3) > 1e-6 {
		t.Errorf("At(11,11) = %v, want 4/3", d)
	}
	// Distance grows monotonically away from the source along a row.
	prev := -1.0
	for x := 10; x < 21; x++ {
		d := m.At(x, 10)
		if d < prev {
			t.Fatalf("distance not monotone at x=%d", x)
		}
		prev = d
	}
	// Out of range is +Inf.
	if !math.IsInf(m.At(-1, 0), 1) {
		t.Error("out-of-range should be +Inf")
	}
}

func TestTransformApproximatesEuclidean(t *testing.T) {
	r, _ := extract.NewRaster(64, 64)
	r.Set(32, 32, true)
	m, _ := Transform(r)
	for _, c := range [][2]int{{40, 32}, {32, 40}, {40, 40}, {50, 20}, {10, 55}} {
		dx, dy := float64(c[0]-32), float64(c[1]-32)
		want := math.Hypot(dx, dy)
		got := m.At(c[0], c[1])
		// 3-4 chamfer error bound ≈ 8%.
		if math.Abs(got-want)/want > 0.09 {
			t.Errorf("At(%d,%d) = %v, Euclidean %v", c[0], c[1], got, want)
		}
	}
}

func TestScoreOnAndOffContour(t *testing.T) {
	r, _ := extract.NewRaster(100, 100)
	sq := geom.NewPolygon(geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 80), geom.Pt(20, 80))
	r.DrawPolyline(sq)
	m, err := Transform(r)
	if err != nil {
		t.Fatal(err)
	}
	// The drawn contour itself scores ≈ 0.
	if s := m.Score(sq, 256); s > 0.5 {
		t.Errorf("self score = %v", s)
	}
	// A displaced copy scores ≈ its displacement.
	moved := sq.Transform(geom.Translation(geom.Pt(10, 0)))
	if s := m.Score(moved, 256); s < 2 {
		t.Errorf("displaced score = %v, should be several pixels", s)
	}
}

func buildImages() map[int][]geom.Poly {
	tri := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 9))
	sq := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10))
	circle := func() geom.Poly {
		pts := make([]geom.Point, 24)
		for i := range pts {
			a := 2 * math.Pi * float64(i) / 24
			pts[i] = geom.Pt(5*math.Cos(a), 5*math.Sin(a))
		}
		return geom.NewPolygon(pts...)
	}()
	return map[int][]geom.Poly{0: {tri}, 1: {sq}, 2: {circle}}
}

func TestMatcherRetrieval(t *testing.T) {
	m, err := NewMatcher(buildImages(), 128)
	if err != nil {
		t.Fatal(err)
	}
	// Each class retrieves itself, under scaling+translation (chamfer
	// matching handles these via the fit normalization, unlike rotation).
	for id, shapes := range buildImages() {
		q := shapes[0].Transform(geom.Transform{S: 2.5, T: geom.Pt(100, -30)})
		ms, err := m.Query(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ms[0].ImageID != id {
			t.Errorf("query %d retrieved %d (score %v)", id, ms[0].ImageID, ms[0].Score)
		}
	}
	// Results sorted, k respected.
	ms, err := m.Query(buildImages()[1][0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Score > ms[1].Score {
		t.Errorf("ordering broken: %v", ms)
	}
	if _, err := m.Query(buildImages()[0][0], 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestMatcherRotationSensitivity(t *testing.T) {
	// The paper's point: raw chamfer matching is sensitive to rotation —
	// with the sweep disabled (Rotations=1), a thin wedge rotated 80°
	// scores clearly worse than the aligned wedge. With the sweep on, the
	// sensitivity is bought back at Rotations× the compute.
	wedge := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(12, 1), geom.Pt(1, 4))
	m, err := NewMatcher(map[int][]geom.Poly{1: {wedge}}, 128)
	if err != nil {
		t.Fatal(err)
	}
	m.Rotations = 1
	aligned, _ := m.Query(wedge, 1)
	rotQ := wedge.Transform(geom.Rotation(80 * math.Pi / 180))
	rot, _ := m.Query(rotQ, 1)
	if rot[0].Score < 2*aligned[0].Score+1 {
		t.Errorf("rotation should hurt raw chamfer: aligned %v, rotated %v",
			aligned[0].Score, rot[0].Score)
	}
	// The sweep restores the match.
	m.Rotations = 64
	swept, _ := m.Query(rotQ, 1)
	if swept[0].Score > aligned[0].Score+1.5 {
		t.Errorf("sweep should recover rotation: %v vs aligned %v",
			swept[0].Score, aligned[0].Score)
	}
}

func TestNewMatcherErrors(t *testing.T) {
	if _, err := NewMatcher(nil, 64); err == nil {
		t.Error("no images should fail")
	}
}
