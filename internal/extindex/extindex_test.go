package extindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rangesearch"
)

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("empty input should fail")
	}
}

func TestTriangleMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		pts := randomPoints(rng, 50+rng.Intn(3000))
		tree, err := Build(pts, 16)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != len(pts) {
			t.Fatalf("Len = %d", tree.Len())
		}
		oracle := rangesearch.NewBrute(pts)
		for q := 0; q < 30; q++ {
			tri := geom.Tri(
				geom.Pt(rng.Float64()*10, rng.Float64()*10),
				geom.Pt(rng.Float64()*10, rng.Float64()*10),
				geom.Pt(rng.Float64()*10, rng.Float64()*10),
			)
			want := oracle.CountTriangle(tri)
			got, err := tree.CountTriangle(tri)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d: CountTriangle = %d, want %d", trial, got, want)
			}
		}
	}
}

func TestRectReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 800)
	tree, err := Build(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	oracle := rangesearch.NewBrute(pts)
	for q := 0; q < 30; q++ {
		a := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		b := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		r := geom.RectOf(a, b)
		var got []int
		if err := tree.ReportRect(r, func(id int) { got = append(got, id) }); err != nil {
			t.Fatal(err)
		}
		var want []int
		oracle.ReportRect(r, func(id int) { want = append(want, id) })
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("ReportRect sizes: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ReportRect ids differ at %d", i)
			}
		}
	}
}

func TestIOAccountingAndLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 5000)
	tree, err := Build(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumBlocks() < 5000/BlockCapacity {
		t.Fatalf("too few blocks: %d", tree.NumBlocks())
	}
	// A small triangle query must touch far fewer blocks than the total.
	tree.ResetStats()
	tri := geom.Tri(geom.Pt(5, 5), geom.Pt(5.3, 5), geom.Pt(5, 5.3))
	if _, err := tree.CountTriangle(tri); err != nil {
		t.Fatal(err)
	}
	reads := tree.Stats().DiskReads
	if reads == 0 {
		t.Error("query should read at least one block")
	}
	if reads > tree.NumBlocks()/2 {
		t.Errorf("small query read %d of %d blocks — no pruning", reads, tree.NumBlocks())
	}
	// Repeating the query hits the pool, not the disk.
	before := tree.Stats().DiskReads
	if _, err := tree.CountTriangle(tri); err != nil {
		t.Fatal(err)
	}
	if tree.Stats().DiskReads != before {
		t.Error("repeated query should be fully cached")
	}
}

func TestBlockUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree, err := Build(randomPoints(rng, 4000), 8)
	if err != nil {
		t.Fatal(err)
	}
	if u := tree.BlockUtilization(); u < 0.5 {
		t.Errorf("block utilization = %v, want ≥ 0.5", u)
	}
	depths := tree.Depths()
	if len(depths) == 0 {
		t.Fatal("no depth info")
	}
	// Split depth ≈ log₂(n/B): ⌈log₂(4000/51)⌉ = 7.
	if maxD := depths[len(depths)-1]; maxD > 9 {
		t.Errorf("block-tree depth %d too large for 4000 points", maxD)
	}
}

func TestSinglePointAndDuplicates(t *testing.T) {
	tree, err := Build([]geom.Point{geom.Pt(1, 1)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tree.CountTriangle(geom.Tri(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(0, 2)))
	if err != nil || n != 1 {
		t.Errorf("single point count = %d, %v", n, err)
	}
	dup := make([]geom.Point, 300)
	for i := range dup {
		dup[i] = geom.Pt(3, 3)
	}
	tree, err = Build(dup, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err = tree.CountTriangle(geom.Tri(geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(3, 4)))
	if err != nil || n != 300 {
		t.Errorf("duplicates count = %d, %v", n, err)
	}
}

// Property: the external tree always agrees with the in-memory oracle.
func TestQuickAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(400))
		tree, err := Build(pts, 4)
		if err != nil {
			return false
		}
		oracle := rangesearch.NewBrute(pts)
		tri := geom.Tri(
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
		)
		got, err := tree.CountTriangle(tri)
		return err == nil && got == oracle.CountTriangle(tri)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The Backend adapter must satisfy rangesearch.Backend semantics.
func TestBackendAdapter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 600)
	tree, err := Build(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	var b rangesearch.Backend = Backend{T: tree}
	if b.Len() != 600 {
		t.Errorf("Len = %d", b.Len())
	}
	oracle := rangesearch.NewBrute(pts)
	for q := 0; q < 25; q++ {
		r := geom.RectOf(
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
			geom.Pt(rng.Float64()*10, rng.Float64()*10))
		if got, want := b.CountRect(r), oracle.CountRect(r); got != want {
			t.Fatalf("CountRect = %d, want %d", got, want)
		}
		tri := geom.Tri(
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
			geom.Pt(rng.Float64()*10, rng.Float64()*10),
			geom.Pt(rng.Float64()*10, rng.Float64()*10))
		if got, want := b.CountTriangle(tri), oracle.CountTriangle(tri); got != want {
			t.Fatalf("CountTriangle = %d, want %d", got, want)
		}
		n := 0
		b.ReportTriangle(tri, func(int) { n++ })
		if n != oracle.CountTriangle(tri) {
			t.Fatalf("ReportTriangle = %d", n)
		}
	}
}
