// Package extindex stores the auxiliary range-search structure in
// external memory (§4: "For accommodating the auxiliary data structures
// in external memory we use optimal range search indexing structures
// [Arge–Samoladas–Vitter, Vitter]").
//
// The structure is a block-packed kd-tree over the shape-base vertices:
// median splits proceed until a part holds at most B points (B = points
// per block), each part is serialized into one disk block (fill between
// B/2 and B by the median-split invariant), and the internal skeleton —
// bounding boxes and child links, O(n/B) of them — stays in memory. A
// triangle query reads only the leaf blocks whose subtree boxes intersect
// the range: O(√(n/B) + k/B) block reads, the external analogue of the
// in-memory kd-tree bound. Queries run through an LRU buffer pool and
// report their I/O cost, which is what the paper's storage experiments
// measure.
package extindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/extstore"
	"repro/internal/geom"
)

// pointRec is one vertex with its id, 20 bytes on disk.
const pointBytes = 20

// BlockCapacity is the number of points per disk block.
const BlockCapacity = extstore.BlockSize / pointBytes

// Tree is the external-memory kd-tree.
type Tree struct {
	disk *extstore.Disk
	pool *extstore.BufferPool

	// One node per *block subtree*: the in-memory skeleton holds only the
	// subtree bounding boxes and child links (O(n/B) of them).
	nodes []blockNode
	root  int32
	n     int
}

// blockNode is the in-memory skeleton: either a leaf holding one disk
// block of points (block ≥ 0) or an internal split node (block < 0).
type blockNode struct {
	block    int32     // disk block of a leaf; -1 for internal nodes
	count    int32     // points in the leaf block
	bounds   geom.Rect // bounding box of the whole subtree
	children []int32   // node indices of child subtrees (internal only)
}

// Build packs the points into blocks and writes them to a fresh disk,
// attaching a buffer pool with bufBlocks capacity.
func Build(pts []geom.Point, bufBlocks int) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("extindex: no points")
	}
	// Pin the paper's 1 Kbyte block (BlockCapacity is derived from it):
	// §4 reports I/O counts in that unit.
	t := &Tree{disk: extstore.NewDiskSize(extstore.BlockSize), n: len(pts)}
	ids := make([]int32, len(pts))
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	for i := range ids {
		ids[i] = int32(i)
	}
	var err error
	t.root, err = t.build(work, ids, 0)
	if err != nil {
		return nil, err
	}
	t.disk.ResetStats()
	t.pool = extstore.NewBufferPool(t.disk, bufBlocks)
	return t, nil
}

// build recursively median-splits until a part fits one block, then
// writes that block; internal nodes carry only bounds and links.
func (t *Tree) build(pts []geom.Point, ids []int32, depth int) (int32, error) {
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, blockNode{})

	if len(pts) <= BlockCapacity {
		buf := make([]byte, 0, len(pts)*pointBytes)
		var scratch [pointBytes]byte
		for i := range pts {
			binary.LittleEndian.PutUint32(scratch[0:], uint32(ids[i]))
			binary.LittleEndian.PutUint64(scratch[4:], math.Float64bits(pts[i].X))
			binary.LittleEndian.PutUint64(scratch[12:], math.Float64bits(pts[i].Y))
			buf = append(buf, scratch[:]...)
		}
		blockIdx := t.disk.NumBlocks()
		if err := t.disk.Write(blockIdx, buf); err != nil {
			return 0, err
		}
		t.nodes[ni] = blockNode{
			block:  int32(blockIdx),
			count:  int32(len(pts)),
			bounds: geom.RectOf(pts...),
		}
		return ni, nil
	}

	mid := len(pts) / 2
	nthElement(pts, ids, mid, depth%2 == 0)
	left, err := t.build(pts[:mid], ids[:mid], depth+1)
	if err != nil {
		return 0, err
	}
	right, err := t.build(pts[mid:], ids[mid:], depth+1)
	if err != nil {
		return 0, err
	}
	t.nodes[ni] = blockNode{
		block:    -1,
		bounds:   t.nodes[left].bounds.Union(t.nodes[right].bounds),
		children: []int32{left, right},
	}
	return ni, nil
}

// nthElement partially sorts so that position k holds the k-th smallest
// by the chosen axis (quickselect with median-of-three pivots).
func nthElement(pts []geom.Point, ids []int32, k int, byX bool) {
	lo, hi := 0, len(pts)-1
	key := func(p geom.Point) float64 {
		if byX {
			return p.X
		}
		return p.Y
	}
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if key(pts[mid]) < key(pts[lo]) {
			swap(pts, ids, mid, lo)
		}
		if key(pts[hi]) < key(pts[lo]) {
			swap(pts, ids, hi, lo)
		}
		if key(pts[hi]) < key(pts[mid]) {
			swap(pts, ids, hi, mid)
		}
		pivot := key(pts[mid])
		i, j := lo, hi
		for i <= j {
			for key(pts[i]) < pivot {
				i++
			}
			for key(pts[j]) > pivot {
				j--
			}
			if i <= j {
				swap(pts, ids, i, j)
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

func swap(pts []geom.Point, ids []int32, a, b int) {
	pts[a], pts[b] = pts[b], pts[a]
	ids[a], ids[b] = ids[b], ids[a]
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.n }

// NumBlocks returns the number of disk blocks used.
func (t *Tree) NumBlocks() int { return t.disk.NumBlocks() }

// Stats returns the I/O counters accumulated by queries.
func (t *Tree) Stats() extstore.IOStats {
	return extstore.IOStats{
		DiskReads:  t.disk.Reads(),
		PoolHits:   t.pool.Hits(),
		PoolMisses: t.pool.Misses(),
	}
}

// ResetStats zeroes the I/O counters (buffer contents survive).
func (t *Tree) ResetStats() {
	t.disk.ResetStats()
	t.pool.ResetStats()
}

// ReportTriangle calls fn for every point inside tr, reading only the
// blocks whose subtree bounding boxes intersect the triangle.
func (t *Tree) ReportTriangle(tr geom.Triangle, fn func(id int)) error {
	return t.visit(t.root, tr, fn)
}

// CountTriangle counts the points inside tr.
func (t *Tree) CountTriangle(tr geom.Triangle) (int, error) {
	n := 0
	err := t.ReportTriangle(tr, func(int) { n++ })
	return n, err
}

func (t *Tree) visit(ni int32, tr geom.Triangle, fn func(id int)) error {
	nd := &t.nodes[ni]
	if !tr.IntersectsRect(nd.bounds) {
		return nil
	}
	if nd.block >= 0 {
		data, err := t.pool.Get(int(nd.block))
		if err != nil {
			return err
		}
		for i := 0; i < int(nd.count); i++ {
			off := i * pointBytes
			p := geom.Pt(
				math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:])),
				math.Float64frombits(binary.LittleEndian.Uint64(data[off+12:])),
			)
			if tr.Contains(p) {
				fn(int(binary.LittleEndian.Uint32(data[off:])))
			}
		}
		return nil
	}
	for _, ci := range nd.children {
		if err := t.visit(ci, tr, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReportRect is the orthogonal variant.
func (t *Tree) ReportRect(r geom.Rect, fn func(id int)) error {
	return t.visitRect(t.root, r, fn)
}

func (t *Tree) visitRect(ni int32, r geom.Rect, fn func(id int)) error {
	nd := &t.nodes[ni]
	if !r.Intersects(nd.bounds) {
		return nil
	}
	if nd.block >= 0 {
		data, err := t.pool.Get(int(nd.block))
		if err != nil {
			return err
		}
		for i := 0; i < int(nd.count); i++ {
			off := i * pointBytes
			p := geom.Pt(
				math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:])),
				math.Float64frombits(binary.LittleEndian.Uint64(data[off+12:])),
			)
			if r.Contains(p) {
				fn(int(binary.LittleEndian.Uint32(data[off:])))
			}
		}
		return nil
	}
	for _, ci := range nd.children {
		if err := t.visitRect(ci, r, fn); err != nil {
			return err
		}
	}
	return nil
}

// BlockUtilization reports the mean fill fraction of the leaf data
// blocks (≥ 1/2 by the median-split invariant, except for a tiny input
// that fits one block).
func (t *Tree) BlockUtilization() float64 {
	var total float64
	leaves := 0
	for i := range t.nodes {
		if t.nodes[i].block >= 0 {
			total += float64(t.nodes[i].count) / float64(BlockCapacity)
			leaves++
		}
	}
	if leaves == 0 {
		return 0
	}
	return total / float64(leaves)
}

// Depths returns the sorted subtree-node depth distribution (diagnostic
// for layout balance).
func (t *Tree) Depths() []int {
	depths := make([]int, 0, len(t.nodes))
	var walk func(ni int32, d int)
	walk = func(ni int32, d int) {
		depths = append(depths, d)
		for _, ci := range t.nodes[ni].children {
			walk(ci, d+1)
		}
	}
	walk(t.root, 0)
	sort.Ints(depths)
	return depths
}

// Backend adapts the external tree to the rangesearch.Backend interface
// so the matching engine can run directly against external-memory
// auxiliary structures (§4). The simulated disk cannot fail after a
// successful Build, so the error returns are statically nil and the
// adapter drops them.
type Backend struct{ T *Tree }

// Len implements rangesearch.Backend.
func (b Backend) Len() int { return b.T.Len() }

// CountRect implements rangesearch.Backend.
func (b Backend) CountRect(r geom.Rect) int {
	n := 0
	_ = b.T.ReportRect(r, func(int) { n++ })
	return n
}

// ReportRect implements rangesearch.Backend.
func (b Backend) ReportRect(r geom.Rect, fn func(id int)) {
	_ = b.T.ReportRect(r, fn)
}

// CountTriangle implements rangesearch.Backend.
func (b Backend) CountTriangle(tr geom.Triangle) int {
	n, _ := b.T.CountTriangle(tr)
	return n
}

// ReportTriangle implements rangesearch.Backend.
func (b Backend) ReportTriangle(tr geom.Triangle, fn func(id int)) {
	_ = b.T.ReportTriangle(tr, fn)
}
