package geosir

import (
	"context"
	"errors"
	"testing"
)

// TestSentinelErrors pins the errors.Is contract of the unified API:
// every state and argument failure surfaces one of the exported
// sentinels, on both engine kinds, through Search and through the
// deprecated wrappers alike.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	q := square(0, 0, 1)

	t.Run("NotFrozen", func(t *testing.T) {
		eng := New(DefaultOptions())
		if _, err := eng.Search(ctx, SearchRequest{Query: q, K: 1}); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("Engine.Search unfrozen: got %v, want ErrNotFrozen", err)
		}
		if _, _, err := eng.FindSimilar(q, 1); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("FindSimilar unfrozen: got %v, want ErrNotFrozen", err)
		}
		if _, _, err := eng.FindSimilarBatch([]Shape{q}, 1, 1); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("FindSimilarBatch unfrozen: got %v, want ErrNotFrozen", err)
		}
		if _, _, err := eng.Query("similar(a)", map[string]Shape{"a": q}); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("Query unfrozen: got %v, want ErrNotFrozen", err)
		}
		se := NewSharded(DefaultOptions(), 2)
		if _, err := se.Search(ctx, SearchRequest{Query: q, K: 1}); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("ShardedEngine.Search unfrozen: got %v, want ErrNotFrozen", err)
		}
	})

	t.Run("Frozen", func(t *testing.T) {
		eng := buildEngine(t)
		if err := eng.AddImage(99, []Shape{q}); !errors.Is(err, ErrFrozen) {
			t.Fatalf("AddImage after Freeze: got %v, want ErrFrozen", err)
		}
		se := NewSharded(DefaultOptions(), 2)
		if err := se.AddImage(1, []Shape{q}); err != nil {
			t.Fatal(err)
		}
		if err := se.Freeze(); err != nil {
			t.Fatal(err)
		}
		if err := se.AddImage(99, []Shape{q}); !errors.Is(err, ErrFrozen) {
			t.Fatalf("sharded AddImage after Freeze: got %v, want ErrFrozen", err)
		}
	})

	t.Run("BadK", func(t *testing.T) {
		eng := buildEngine(t)
		for _, k := range []int{0, -3} {
			if _, err := eng.Search(ctx, SearchRequest{Query: q, K: k}); !errors.Is(err, ErrBadK) {
				t.Fatalf("Search k=%d: got %v, want ErrBadK", k, err)
			}
		}
		if _, _, err := eng.FindSimilar(q, 0); !errors.Is(err, ErrBadK) {
			t.Fatalf("FindSimilar k=0: got %v, want ErrBadK", err)
		}
		if _, _, err := eng.FindSimilarBatch([]Shape{q}, 0, 1); !errors.Is(err, ErrBadK) {
			t.Fatalf("FindSimilarBatch k=0: got %v, want ErrBadK", err)
		}
		if _, err := eng.FindBySketch([]Shape{q}, 0); !errors.Is(err, ErrBadK) {
			t.Fatalf("FindBySketch k=0: got %v, want ErrBadK", err)
		}
	})

	t.Run("EmptyQuery", func(t *testing.T) {
		eng := buildEngine(t)
		for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
			if _, err := eng.Search(ctx, SearchRequest{K: 1, Mode: mode}); !errors.Is(err, ErrEmptyQuery) {
				t.Fatalf("Search %v with no query: got %v, want ErrEmptyQuery", mode, err)
			}
		}
		if _, err := eng.Search(ctx, SearchRequest{K: 1, Mode: ModeSketch}); !errors.Is(err, ErrEmptyQuery) {
			t.Fatalf("Search sketch with no sketch: got %v, want ErrEmptyQuery", err)
		}
		if _, err := eng.FindBySketch(nil, 1); !errors.Is(err, ErrEmptyQuery) {
			t.Fatalf("FindBySketch nil: got %v, want ErrEmptyQuery", err)
		}
	})

	t.Run("ValidationOrder", func(t *testing.T) {
		// Frozen-state errors outrank argument errors, so callers can
		// rely on ErrNotFrozen from a mis-sequenced setup regardless of
		// the request's shape.
		eng := New(DefaultOptions())
		if _, err := eng.Search(ctx, SearchRequest{K: 0}); !errors.Is(err, ErrNotFrozen) {
			t.Fatalf("unfrozen + bad k: got %v, want ErrNotFrozen", err)
		}
		frozen := buildEngine(t)
		if _, err := frozen.Search(ctx, SearchRequest{K: 0}); !errors.Is(err, ErrBadK) {
			t.Fatalf("bad k + empty query: got %v, want ErrBadK", err)
		}
	})
}

// TestSearchContextCancelled verifies a cancelled context wins over
// every other validation.
func TestSearchContextCancelled(t *testing.T) {
	eng := buildEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Search(ctx, SearchRequest{Query: square(0, 0, 1), K: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSearchMatchesDeprecatedWrappers proves each deprecated variant is
// a faithful view of the unified Search — same results, byte for byte.
func TestSearchMatchesDeprecatedWrappers(t *testing.T) {
	eng := buildEngine(t)
	ctx := context.Background()
	q := square(0.1, -0.1, 1.9)

	wantMs, wantStats, err := eng.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(ctx, SearchRequest{Query: q, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEqual(t, "FindSimilar vs Search", wantMs, resp.Matches)
	if resp.Stats != wantStats {
		t.Fatalf("stats diverge: %+v vs %+v", resp.Stats, wantStats)
	}

	wantApprox, err := eng.FindApproximate(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = eng.Search(ctx, SearchRequest{Query: q, K: 3, Mode: ModeApproximate})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEqual(t, "FindApproximate vs Search", wantApprox, resp.Matches)

	sketch := []Shape{square(0, 0, 19), triangle(5, 5, 2.9)}
	wantSketch, err := eng.FindBySketch(sketch, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = eng.Search(ctx, SearchRequest{Sketch: sketch, K: 3, Mode: ModeSketch})
	if err != nil {
		t.Fatal(err)
	}
	assertSketchEqual(t, "FindBySketch vs Search", wantSketch, resp.SketchMatches)
}

func TestModeStringParseRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate, ModeSketch} {
		got, err := ParseMode(mode.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", mode.String(), err)
		}
		if got != mode {
			t.Fatalf("ParseMode(%q) = %v, want %v", mode.String(), got, mode)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeAuto {
		t.Fatalf("ParseMode(\"\") = %v, %v; want ModeAuto", m, err)
	}
	if _, err := ParseMode("fuzzy"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}
