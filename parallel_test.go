package geosir

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

func TestFindSimilarBatchMatchesSequential(t *testing.T) {
	eng := buildEngine(t)
	rng := rand.New(rand.NewSource(7))
	var queries []Shape
	for i := 0; i < 12; i++ {
		src := eng.Base().Shape(rng.Intn(eng.NumShapes())).Poly
		q := synth.Distort(rng, src, 0.01)
		if q.Validate() != nil {
			q = src
		}
		queries = append(queries, q)
	}
	batch, bstats, err := eng.FindSimilarBatch(queries, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) || len(bstats) != len(queries) {
		t.Fatalf("result shape: %d/%d", len(batch), len(bstats))
	}
	for i, q := range queries {
		seq, sstats, err := eng.FindSimilar(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: %d vs %d matches", i, len(batch[i]), len(seq))
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Errorf("query %d rank %d: %+v vs %+v", i, j, batch[i][j], seq[j])
			}
		}
		if sstats != bstats[i] {
			t.Errorf("query %d stats differ", i)
		}
	}
}

func TestFindSimilarBatchErrors(t *testing.T) {
	eng := New(DefaultOptions())
	if _, _, err := eng.FindSimilarBatch([]Shape{square(0, 0, 1)}, 1, 2); err == nil {
		t.Error("unfrozen batch should fail")
	}
	built := buildEngine(t)
	if _, _, err := built.FindSimilarBatch([]Shape{square(0, 0, 1)}, 0, 2); err == nil {
		t.Error("k=0 should fail")
	}
	// An invalid query inside the batch surfaces with its index.
	bad := []Shape{square(0, 0, 1), NewPolyline(Pt(0, 0))}
	if _, _, err := built.FindSimilarBatch(bad, 1, 2); err == nil {
		t.Error("invalid query in batch should fail")
	}
	// Empty batch is fine.
	ms, st, err := built.FindSimilarBatch(nil, 1, 2)
	if err != nil || len(ms) != 0 || len(st) != 0 {
		t.Errorf("empty batch: %v %v %v", ms, st, err)
	}
}
