package geosir

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/synth"
)

func TestFindSimilarBatchMatchesSequential(t *testing.T) {
	eng := buildEngine(t)
	rng := rand.New(rand.NewSource(7))
	var queries []Shape
	for i := 0; i < 12; i++ {
		src := eng.Base().Shape(rng.Intn(eng.NumShapes())).Poly
		q := synth.Distort(rng, src, 0.01)
		if q.Validate() != nil {
			q = src
		}
		queries = append(queries, q)
	}
	batch, bstats, err := eng.FindSimilarBatch(queries, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) || len(bstats) != len(queries) {
		t.Fatalf("result shape: %d/%d", len(batch), len(bstats))
	}
	for i, q := range queries {
		seq, sstats, err := eng.FindSimilar(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: %d vs %d matches", i, len(batch[i]), len(seq))
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Errorf("query %d rank %d: %+v vs %+v", i, j, batch[i][j], seq[j])
			}
		}
		if sstats != bstats[i] {
			t.Errorf("query %d stats differ", i)
		}
	}
}

func TestFindSimilarBatchErrors(t *testing.T) {
	eng := New(DefaultOptions())
	if _, _, err := eng.FindSimilarBatch([]Shape{square(0, 0, 1)}, 1, 2); err == nil {
		t.Error("unfrozen batch should fail")
	}
	built := buildEngine(t)
	if _, _, err := built.FindSimilarBatch([]Shape{square(0, 0, 1)}, 0, 2); err == nil {
		t.Error("k=0 should fail")
	}
	// An invalid query inside the batch surfaces with its index.
	bad := []Shape{square(0, 0, 1), NewPolyline(Pt(0, 0))}
	if _, _, err := built.FindSimilarBatch(bad, 1, 2); err == nil {
		t.Error("invalid query in batch should fail")
	}
	// Empty batch is fine.
	ms, st, err := built.FindSimilarBatch(nil, 1, 2)
	if err != nil || len(ms) != 0 || len(st) != 0 {
		t.Errorf("empty batch: %v %v %v", ms, st, err)
	}
}

func TestFindSimilarBatchSizes(t *testing.T) {
	eng := buildEngine(t)
	base := square(0, 0, 10)
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"zero", 0}, {"one", 1}, {"many", 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			queries := make([]Shape, tc.n)
			for i := range queries {
				queries[i] = base
			}
			// Worker counts above the batch size must be capped, not
			// deadlock or spawn idle goroutines.
			ms, st, err := eng.FindSimilarBatch(queries, 2, tc.n+5)
			if err != nil {
				t.Fatal(err)
			}
			if ms == nil || st == nil {
				t.Fatal("batch results must be non-nil")
			}
			if len(ms) != tc.n || len(st) != tc.n {
				t.Fatalf("result shape: %d/%d, want %d", len(ms), len(st), tc.n)
			}
			for i := range ms {
				if len(ms[i]) == 0 {
					t.Errorf("query %d: no matches", i)
				}
			}
		})
	}
}

func TestFindSimilarBatchCtxCancel(t *testing.T) {
	eng := buildEngine(t)
	// A batch far larger than the worker pool, under a deadline the batch
	// cannot possibly meet (a single FindSimilar on this base costs tens
	// of microseconds and there are 5000 of them on 2 workers). The only
	// way the call returns an error is the dispatcher observing the
	// cancelled context mid-batch and aborting early.
	const n = 5000
	queries := make([]Shape, n)
	for i := range queries {
		queries[i] = lshape(0, 0, 2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := eng.FindSimilarBatchCtx(ctx, queries, 2, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// "Promptly": nowhere near the time the full batch would take.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
}

func TestFindSimilarBatchCtxPreCancelled(t *testing.T) {
	eng := buildEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.FindSimilarBatchCtx(ctx, []Shape{square(0, 0, 1)}, 1, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := eng.FindBySketchWorkersCtx(ctx, []Shape{square(0, 0, 1)}, 1, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("sketch err = %v, want context.Canceled", err)
	}
}

func TestFindBySketchWorkersCtxCancel(t *testing.T) {
	eng := buildEngine(t)
	sketch := make([]Shape, 64)
	for i := range sketch {
		sketch[i] = lshape(0, 0, 2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.FindBySketchWorkersCtx(ctx, sketch, 3, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFindBySketchWorkersCapsWorkers(t *testing.T) {
	eng := buildEngine(t)
	// workers far above len(sketch) must behave identically.
	a, err := eng.FindBySketchWorkers([]Shape{square(0, 0, 10)}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.FindBySketchWorkers([]Shape{square(0, 0, 10)}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("worker cap changed results: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ImageID != b[i].ImageID || a[i].Score != b[i].Score {
			t.Errorf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
