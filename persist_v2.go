package geosir

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/annindex"
)

// GSIR2 is the current stream format:
//
//	magic "GSIR2\n"
//	section := u32 payloadLen | payload | u32 crc32(payload)   (little-endian, IEEE CRC)
//	section 0 (options, 44 bytes): f64 alpha, beta, tau, angleTol | u32 hashCurves | u32 nImages | u32 nAux
//	sections 1..nImages (one per image):
//	    u32 imageID | u32 nShapes | nShapes × { u32 flags (bit0 = closed) | u32 nVerts | nVerts × (f64 x, f64 y) }
//	sections nImages+1..nImages+nAux (auxiliary, tagged):
//	    4-byte tag | tag-specific payload
//	    tag "ANN1": u32 gridRes | u32 bands | u32 rows | u64 seed | u32 nEntries | nEntries × bands·rows × u64 signature
//
// Version negotiation: a 40-byte options payload (written before
// auxiliary sections existed) implies nAux = 0, so old snapshots load
// unchanged and Freeze rebuilds the ANN index from the shapes —
// deterministically, so the rebuilt index matches what the snapshot
// would have carried. Unknown auxiliary tags from newer writers are
// framed and checksummed like any section and are skipped.
//
// Every section is independently framed and checksummed: truncation, a
// torn tail, or a flipped byte anywhere in a section surfaces as a CRC or
// framing error rather than a silently different image base, and
// LoadPartial can drop exactly the damaged sections while keeping the
// rest. Declaring nAux up front keeps truncation detection airtight: a
// tear at the auxiliary-section boundary cannot masquerade as a shorter
// valid stream.

// maxSectionLen bounds a section length prefix against corrupt framing.
const maxSectionLen = 1 << 30

// errBadCRC marks a section whose payload read fully but failed its
// checksum — framing is intact, the content is not.
var errBadCRC = errors.New("geosir: section checksum mismatch")

// optionsSectionLenV1 is the legacy options payload (no auxiliary
// count); optionsSectionLen is the current one with the trailing nAux.
const (
	optionsSectionLenV1 = 4*8 + 4 + 4
	optionsSectionLen   = optionsSectionLenV1 + 4
)

// maxAuxSections bounds the declared auxiliary count against corrupt
// framing.
const maxAuxSections = 64

// auxTagANN marks the MinHash/LSH signature section.
const auxTagANN = "ANN1"

func appendU32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// writeSection frames payload with its length prefix and CRC32 trailer.
func writeSection(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readSection reads one framed section. It returns errBadCRC (with the
// suspect payload, for best-effort reporting) when the bytes read fully
// but the checksum disagrees; any other error means framing itself is
// broken (truncation, implausible length) and the stream position past
// this point cannot be trusted.
func readSection(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxSectionLen {
		return nil, fmt.Errorf("geosir: implausible section length %d", n)
	}
	buf, err := readCapped(r, int(n)+4)
	if err != nil {
		return nil, err
	}
	payload, sum := buf[:n], binary.LittleEndian.Uint32(buf[n:])
	if crc32.ChecksumIEEE(payload) != sum {
		return payload, errBadCRC
	}
	return payload, nil
}

// saveGSIR2 writes the checksummed format.
func (e *Engine) saveGSIR2(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicGSIR2); err != nil {
		return err
	}
	images := e.imagesInOrder()
	opt := make([]byte, 0, optionsSectionLen)
	opt = appendF64(opt, e.opts.Alpha)
	opt = appendF64(opt, e.opts.Beta)
	opt = appendF64(opt, e.opts.Tau)
	opt = appendF64(opt, e.opts.AngleTol)
	opt = appendU32(opt, uint32(e.opts.HashCurves))
	opt = appendU32(opt, uint32(len(images)))
	opt = appendU32(opt, 1) // auxiliary sections: the ANN signatures
	if err := writeSection(bw, opt); err != nil {
		return err
	}
	var buf []byte
	for _, img := range images {
		buf = buf[:0]
		buf = appendU32(buf, uint32(img.id))
		buf = appendU32(buf, uint32(len(img.shapes)))
		for _, sh := range img.shapes {
			flags := uint32(0)
			if sh.Closed {
				flags = 1
			}
			buf = appendU32(buf, flags)
			buf = appendU32(buf, uint32(len(sh.Pts)))
			for _, p := range sh.Pts {
				buf = appendF64(buf, p.X)
				buf = appendF64(buf, p.Y)
			}
		}
		if err := writeSection(bw, buf); err != nil {
			return err
		}
	}
	if err := writeSection(bw, e.annSectionPayload()); err != nil {
		return err
	}
	return bw.Flush()
}

// annSectionPayload encodes the ANN auxiliary section. Signature
// construction is deterministic, so a loaded-and-resaved snapshot
// reproduces this section byte for byte whether or not the engine was
// ever frozen.
func (e *Engine) annSectionPayload() []byte {
	p, sigs, n := e.annSignatures()
	buf := make([]byte, 0, 4+3*4+8+4+len(sigs)*8)
	buf = append(buf, auxTagANN...)
	buf = appendU32(buf, uint32(p.GridRes))
	buf = appendU32(buf, uint32(p.Bands))
	buf = appendU32(buf, uint32(p.Rows))
	buf = appendU64(buf, p.Seed)
	buf = appendU32(buf, uint32(n))
	for _, s := range sigs {
		buf = appendU64(buf, s)
	}
	return buf
}

// cursor is a bounds-checked little-endian reader over a section payload.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) u32() uint32 {
	v := c.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (c *cursor) u64() uint64 {
	v := c.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (c *cursor) f64() float64 {
	return math.Float64frombits(c.u64())
}

func (c *cursor) remaining() int { return len(c.b) }

// readOptionsSection parses section 0: the engine options, the declared
// image count, and the declared auxiliary-section count. A legacy
// 40-byte payload (written before auxiliary sections existed) implies
// zero auxiliary sections.
func readOptionsSection(r io.Reader) (Options, int, int, error) {
	payload, err := readSection(r)
	if err != nil {
		return Options{}, 0, 0, fmt.Errorf("geosir: options section: %w", err)
	}
	if len(payload) != optionsSectionLen && len(payload) != optionsSectionLenV1 {
		return Options{}, 0, 0, fmt.Errorf("geosir: options section is %d bytes, want %d or %d",
			len(payload), optionsSectionLen, optionsSectionLenV1)
	}
	c := cursor{b: payload}
	var opts Options
	opts.Alpha = c.f64()
	opts.Beta = c.f64()
	opts.Tau = c.f64()
	opts.AngleTol = c.f64()
	hc := c.u32()
	nimg := c.u32()
	naux := uint32(0)
	if len(payload) == optionsSectionLen {
		naux = c.u32()
	}
	if c.err != nil {
		return Options{}, 0, 0, c.err
	}
	if hc > maxHashCurves {
		return Options{}, 0, 0, fmt.Errorf("geosir: implausible hash-curve count %d", hc)
	}
	opts.HashCurves = int(hc)
	if nimg > maxCount {
		return Options{}, 0, 0, fmt.Errorf("geosir: implausible image count %d", nimg)
	}
	if naux > maxAuxSections {
		return Options{}, 0, 0, fmt.Errorf("geosir: implausible auxiliary-section count %d", naux)
	}
	return opts, int(nimg), int(naux), nil
}

// parseImagePayload decodes one image section payload. Counts are
// validated against the bytes actually present before any allocation, so
// a corrupt (but checksum-colliding) payload cannot force a huge
// allocation.
func parseImagePayload(b []byte) (int, []Shape, error) {
	c := cursor{b: b}
	imgID := c.u32()
	nsh := c.u32()
	if c.err != nil {
		return 0, nil, c.err
	}
	if int64(nsh)*8 > int64(c.remaining()) {
		return 0, nil, fmt.Errorf("geosir: implausible shape count %d", nsh)
	}
	shapes := make([]Shape, 0, nsh)
	for s := uint32(0); s < nsh; s++ {
		flags := c.u32()
		nv := c.u32()
		if c.err != nil {
			return 0, nil, c.err
		}
		if int64(nv)*16 > int64(c.remaining()) {
			return 0, nil, fmt.Errorf("geosir: implausible vertex count %d", nv)
		}
		pts := make([]Point, nv)
		for v := range pts {
			pts[v] = Pt(c.f64(), c.f64())
		}
		if c.err != nil {
			return 0, nil, c.err
		}
		shapes = append(shapes, Shape{Pts: pts, Closed: flags&1 == 1})
	}
	if c.remaining() != 0 {
		return 0, nil, fmt.Errorf("geosir: %d trailing bytes in image section", c.remaining())
	}
	return int(imgID), shapes, nil
}

// applyAuxSection dispatches one verified auxiliary payload by tag.
// Unknown tags (from newer writers) are skipped.
func (e *Engine) applyAuxSection(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("geosir: auxiliary section too short (%d bytes)", len(payload))
	}
	switch string(payload[:4]) {
	case auxTagANN:
		pre, err := parseAnnPayload(payload[4:])
		if err != nil {
			return fmt.Errorf("geosir: ann section: %w", err)
		}
		e.annPre = pre
	}
	return nil
}

// parseAnnPayload decodes the ANN signature section (tag already
// consumed). Counts are validated against the bytes present before any
// allocation, mirroring parseImagePayload.
func parseAnnPayload(b []byte) (*annPreload, error) {
	c := cursor{b: b}
	var p annindex.Params
	gridRes := c.u32()
	bands := c.u32()
	rows := c.u32()
	p.Seed = c.u64()
	n := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	if gridRes < 1 || gridRes > 4096 {
		return nil, fmt.Errorf("geosir: implausible ANN grid resolution %d", gridRes)
	}
	if bands < 1 || bands > 4096 {
		return nil, fmt.Errorf("geosir: implausible ANN band count %d", bands)
	}
	if rows < 1 || rows > 64 {
		return nil, fmt.Errorf("geosir: implausible ANN row count %d", rows)
	}
	if n > maxCount {
		return nil, fmt.Errorf("geosir: implausible ANN entry count %d", n)
	}
	p.GridRes, p.Bands, p.Rows = int(gridRes), int(bands), int(rows)
	h := int(bands) * int(rows)
	if want := int64(n) * int64(h) * 8; want != int64(c.remaining()) {
		return nil, fmt.Errorf("geosir: ANN section holds %d signature bytes, want %d", c.remaining(), want)
	}
	sigs := make([]uint64, int(n)*h)
	for i := range sigs {
		sigs[i] = c.u64()
	}
	return &annPreload{params: p, sigs: sigs, n: int(n)}, nil
}

// bestEffortImageID pulls the image id from a damaged payload when
// enough bytes exist, purely for the recovery report; -1 otherwise.
func bestEffortImageID(payload []byte) int {
	if len(payload) >= 4 {
		return int(binary.LittleEndian.Uint32(payload))
	}
	return -1
}

// loadGSIR2 reads a checksummed stream (magic already consumed) and
// returns the frozen engine. Any framing damage, checksum mismatch, or
// trailing garbage fails the load.
func loadGSIR2(r io.Reader) (*Engine, error) {
	opts, nimg, naux, err := readOptionsSection(r)
	if err != nil {
		return nil, err
	}
	eng := New(opts)
	for i := 0; i < nimg; i++ {
		payload, err := readSection(r)
		if err != nil {
			return nil, fmt.Errorf("geosir: image section %d: %w", i+1, err)
		}
		imgID, shapes, err := parseImagePayload(payload)
		if err != nil {
			return nil, fmt.Errorf("geosir: image section %d: %w", i+1, err)
		}
		if err := eng.AddImage(imgID, shapes); err != nil {
			return nil, fmt.Errorf("geosir: image %d: %w", imgID, err)
		}
	}
	for a := 0; a < naux; a++ {
		payload, err := readSection(r)
		if err != nil {
			return nil, fmt.Errorf("geosir: auxiliary section %d: %w", a+1, err)
		}
		if err := eng.applyAuxSection(payload); err != nil {
			return nil, fmt.Errorf("geosir: auxiliary section %d: %w", a+1, err)
		}
	}
	var tail [1]byte
	if _, err := io.ReadFull(r, tail[:]); err != io.EOF {
		return nil, fmt.Errorf("geosir: trailing bytes after final section")
	}
	if err := freezeLoaded(eng); err != nil {
		return nil, err
	}
	return eng, nil
}

// loadPartialGSIR2 salvages every image section that still verifies. A
// checksum mismatch costs only that section (framing stays intact); a
// framing error (truncation, mangled length prefix) ends recovery, and
// every unread section is reported dropped.
func loadPartialGSIR2(cr *countReader) (*Engine, *Recovery, error) {
	opts, nimg, naux, err := readOptionsSection(cr)
	if err != nil {
		return nil, nil, fmt.Errorf("geosir: unrecoverable options section: %w", err)
	}
	eng := New(opts)
	rec := &Recovery{Format: "GSIR2", ImagesExpected: nimg}
	for i := 0; i < nimg; i++ {
		off := cr.off
		payload, err := readSection(cr)
		if err != nil && !errors.Is(err, errBadCRC) {
			// Framing lost: report the section where it broke and count
			// the unreadable tail rather than enumerating it.
			rec.Truncated = true
			rec.Dropped = append(rec.Dropped, DroppedImage{
				Section: i + 1,
				ImageID: -1,
				Offset:  off,
				Err:     err,
			})
			rec.ImagesUnread = nimg - i - 1
			break
		}
		if err != nil { // checksum mismatch: skip just this section
			rec.Dropped = append(rec.Dropped, DroppedImage{
				Section: i + 1,
				ImageID: bestEffortImageID(payload),
				Offset:  off,
				Err:     err,
			})
			continue
		}
		imgID, shapes, perr := parseImagePayload(payload)
		if perr == nil {
			perr = eng.AddImage(imgID, shapes)
		} else {
			imgID = bestEffortImageID(payload)
		}
		if perr != nil {
			rec.Dropped = append(rec.Dropped, DroppedImage{
				Section: i + 1,
				ImageID: imgID,
				Offset:  off,
				Err:     perr,
			})
			continue
		}
		rec.ImagesLoaded++
	}
	// Auxiliary sections are derived data: read them best-effort (a
	// verified ANN section spares Freeze the signature recomputation),
	// and on any damage just count the loss and let Freeze rebuild
	// deterministically.
	if rec.Truncated {
		rec.AuxDropped = naux
	} else {
		for a := 0; a < naux; a++ {
			payload, err := readSection(cr)
			if err != nil {
				rec.AuxDropped++
				if errors.Is(err, errBadCRC) {
					continue // next section is still framed
				}
				rec.AuxDropped += naux - a - 1
				break
			}
			if eng.applyAuxSection(payload) != nil {
				rec.AuxDropped++
			}
		}
	}
	if err := freezeLoaded(eng); err != nil {
		return nil, nil, err
	}
	return eng, rec, nil
}
