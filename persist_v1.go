package geosir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// GSIR1 is the legacy stream format: magic, 4 float64 options, the hash
// curve count, then the images as a bare concatenation with no length
// framing and no checksums. Kept so old snapshots stay loadable and old
// readers can still be fed (SaveAs(FormatGSIR1)).

// saveGSIR1 writes the legacy format.
func (e *Engine) saveGSIR1(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicGSIR1); err != nil {
		return err
	}
	writeF := func(v float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	writeU := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	for _, v := range []float64{e.opts.Alpha, e.opts.Beta, e.opts.Tau, e.opts.AngleTol} {
		if err := writeF(v); err != nil {
			return err
		}
	}
	if err := writeU(uint32(e.opts.HashCurves)); err != nil {
		return err
	}

	images := e.imagesInOrder()
	if err := writeU(uint32(len(images))); err != nil {
		return err
	}
	for _, img := range images {
		if err := writeU(uint32(img.id)); err != nil {
			return err
		}
		if err := writeU(uint32(len(img.shapes))); err != nil {
			return err
		}
		for _, sh := range img.shapes {
			flag := uint32(0)
			if sh.Closed {
				flag = 1
			}
			if err := writeU(flag); err != nil {
				return err
			}
			if err := writeU(uint32(len(sh.Pts))); err != nil {
				return err
			}
			for _, p := range sh.Pts {
				if err := writeF(p.X); err != nil {
					return err
				}
				if err := writeF(p.Y); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// savedImage is one image's shapes in snapshot order.
type savedImage struct {
	id     int
	shapes []Shape
}

// imagesInOrder groups the base's shapes by image, preserving first-seen
// image order so the encoding is deterministic (and canonical for the
// byte-identity guarantee).
func (e *Engine) imagesInOrder() []savedImage {
	base := e.db.Base()
	byImage := make(map[int]int) // image id → index into out
	var out []savedImage
	for _, s := range base.Shapes() {
		i, seen := byImage[s.Image]
		if !seen {
			i = len(out)
			byImage[s.Image] = i
			out = append(out, savedImage{id: s.Image})
		}
		out[i].shapes = append(out[i].shapes, s.Poly)
	}
	return out
}

// v1Reader decodes the legacy stream after the magic.
type v1Reader struct {
	br *bufio.Reader
}

func newV1Reader(r io.Reader) *v1Reader { return &v1Reader{br: bufio.NewReader(r)} }

func (d *v1Reader) readF() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(d.br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (d *v1Reader) readU() (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(d.br, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// readOptions parses the option block and the image count.
func (d *v1Reader) readOptions() (Options, uint32, error) {
	var opts Options
	var err error
	if opts.Alpha, err = d.readF(); err != nil {
		return opts, 0, fmt.Errorf("geosir: options: %w", err)
	}
	if opts.Beta, err = d.readF(); err != nil {
		return opts, 0, err
	}
	if opts.Tau, err = d.readF(); err != nil {
		return opts, 0, err
	}
	if opts.AngleTol, err = d.readF(); err != nil {
		return opts, 0, err
	}
	hc, err := d.readU()
	if err != nil {
		return opts, 0, err
	}
	if hc > maxHashCurves {
		return opts, 0, fmt.Errorf("geosir: implausible hash-curve count %d", hc)
	}
	opts.HashCurves = int(hc)
	nimg, err := d.readU()
	if err != nil {
		return opts, 0, err
	}
	if nimg > maxCount {
		return opts, 0, fmt.Errorf("geosir: implausible image count %d", nimg)
	}
	return opts, nimg, nil
}

// readImage parses one image record (id, shapes).
func (d *v1Reader) readImage() (int, []Shape, error) {
	imgID, err := d.readU()
	if err != nil {
		return 0, nil, err
	}
	nsh, err := d.readU()
	if err != nil {
		return 0, nil, err
	}
	if nsh > maxCount {
		return 0, nil, fmt.Errorf("geosir: implausible shape count %d", nsh)
	}
	// Capacities are capped so a corrupt count cannot force a huge
	// allocation before the stream runs dry.
	shapes := make([]Shape, 0, min(int(nsh), 1024))
	for s := uint32(0); s < nsh; s++ {
		flag, err := d.readU()
		if err != nil {
			return 0, nil, err
		}
		nv, err := d.readU()
		if err != nil {
			return 0, nil, err
		}
		if nv > maxCount {
			return 0, nil, fmt.Errorf("geosir: implausible vertex count %d", nv)
		}
		pts := make([]Point, 0, min(int(nv), 4096))
		for v := uint32(0); v < nv; v++ {
			x, err := d.readF()
			if err != nil {
				return 0, nil, err
			}
			y, err := d.readF()
			if err != nil {
				return 0, nil, err
			}
			pts = append(pts, Pt(x, y))
		}
		shapes = append(shapes, Shape{Pts: pts, Closed: flag == 1})
	}
	return int(imgID), shapes, nil
}

// loadGSIR1 reads a legacy stream (magic already consumed) and returns
// the frozen engine. Any damage fails the load.
func loadGSIR1(r io.Reader) (*Engine, error) {
	d := newV1Reader(r)
	opts, nimg, err := d.readOptions()
	if err != nil {
		return nil, err
	}
	eng := New(opts)
	for i := uint32(0); i < nimg; i++ {
		imgID, shapes, err := d.readImage()
		if err != nil {
			return nil, err
		}
		if err := eng.AddImage(imgID, shapes); err != nil {
			return nil, fmt.Errorf("geosir: image %d: %w", imgID, err)
		}
	}
	if err := freezeLoaded(eng); err != nil {
		return nil, err
	}
	return eng, nil
}

// loadPartialGSIR1 salvages the undamaged prefix of a legacy stream.
// GSIR1 has no section framing or checksums, so the first parse error
// ends recovery: every fully parsed image before it is kept, everything
// after is reported dropped.
func loadPartialGSIR1(cr *countReader) (*Engine, *Recovery, error) {
	d := newV1Reader(cr)
	opts, nimg, err := d.readOptions()
	if err != nil {
		return nil, nil, fmt.Errorf("geosir: unrecoverable options header: %w", err)
	}
	eng := New(opts)
	rec := &Recovery{Format: "GSIR1", ImagesExpected: int(nimg)}
	for i := uint32(0); i < nimg; i++ {
		imgID, shapes, err := d.readImage()
		if err != nil {
			// A parse error loses framing: the stream position is
			// untrustworthy from here on. The failing section is reported;
			// the unreadable tail is counted, not enumerated.
			rec.Truncated = true
			rec.Dropped = append(rec.Dropped, DroppedImage{
				Section: int(i) + 1,
				ImageID: -1,
				Err:     err,
			})
			rec.ImagesUnread = int(nimg) - int(i) - 1
			break
		}
		// A decoded but invalid image (corrupt coordinate bytes still
		// parse as floats) keeps framing intact: drop it and continue.
		if err := eng.AddImage(imgID, shapes); err != nil {
			rec.Dropped = append(rec.Dropped, DroppedImage{
				Section: int(i) + 1,
				ImageID: imgID,
				Err:     err,
			})
			continue
		}
		rec.ImagesLoaded++
	}
	if err := freezeLoaded(eng); err != nil {
		return nil, nil, err
	}
	return eng, rec, nil
}
