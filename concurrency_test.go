package geosir

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/synth"
)

// buildSketch returns a small multi-shape sketch resembling one of the
// engine's images.
func buildSketch() []Shape {
	return []Shape{square(0, 0, 19), triangle(5, 5, 2.9)}
}

// TestConcurrentQueries drives every read API of one frozen engine from
// many goroutines at once — the contract DESIGN.md's concurrency model
// promises. Run under -race it also proves the pooled scratch state and
// frozen oracles are properly isolated per query. Every goroutine must
// observe exactly the same results as a sequential reference.
func TestConcurrentQueries(t *testing.T) {
	eng := buildEngine(t)
	rng := rand.New(rand.NewSource(21))
	var queries []Shape
	for i := 0; i < 8; i++ {
		src := eng.Base().Shape(rng.Intn(eng.NumShapes())).Poly
		q := synth.Distort(rng, src, 0.01)
		if q.Validate() != nil {
			q = src
		}
		queries = append(queries, q)
	}
	sketch := buildSketch()

	// Sequential reference answers.
	refBatch, _, err := eng.FindSimilarBatch(queries, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	refSketch, err := eng.FindBySketchWorkers(sketch, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	refApprox, err := eng.FindApproximate(queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				switch (g + round) % 3 {
				case 0:
					batch, _, err := eng.FindSimilarBatch(queries, 2, 4)
					if err != nil {
						errCh <- err
						return
					}
					for i := range refBatch {
						for j := range refBatch[i] {
							if batch[i][j] != refBatch[i][j] {
								t.Errorf("goroutine %d: batch[%d][%d] = %+v, want %+v",
									g, i, j, batch[i][j], refBatch[i][j])
								return
							}
						}
					}
				case 1:
					sm, err := eng.FindBySketchWorkers(sketch, 3, 2)
					if err != nil {
						errCh <- err
						return
					}
					if len(sm) != len(refSketch) {
						t.Errorf("goroutine %d: %d sketch matches, want %d",
							g, len(sm), len(refSketch))
						return
					}
					for i := range sm {
						if sm[i].ImageID != refSketch[i].ImageID || sm[i].Score != refSketch[i].Score {
							t.Errorf("goroutine %d: sketch rank %d = %+v, want %+v",
								g, i, sm[i], refSketch[i])
							return
						}
					}
				case 2:
					am, err := eng.FindApproximate(queries[0], 3)
					if err != nil {
						errCh <- err
						return
					}
					for i := range am {
						if am[i] != refApprox[i] {
							t.Errorf("goroutine %d: approx rank %d = %+v, want %+v",
								g, i, am[i], refApprox[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestFindBySketchWorkersEquivalence asserts the parallel fan-out is
// invisible in the results: any worker count produces the sequential
// answer, match for match.
func TestFindBySketchWorkersEquivalence(t *testing.T) {
	eng := buildEngine(t)
	sketch := buildSketch()
	ref, err := eng.FindBySketchWorkers(sketch, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference sketch retrieval returned nothing")
	}
	for _, workers := range []int{0, 2, 4, 8} {
		got, err := eng.FindBySketchWorkers(sketch, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i].ImageID != ref[i].ImageID || got[i].Score != ref[i].Score {
				t.Fatalf("workers=%d rank %d: %+v, want %+v", workers, i, got[i], ref[i])
			}
			for si := range got[i].PerShape {
				if got[i].PerShape[si] != ref[i].PerShape[si] {
					t.Fatalf("workers=%d rank %d shape %d: %v, want %v",
						workers, i, si, got[i].PerShape[si], ref[i].PerShape[si])
				}
			}
		}
	}
}

// TestFindBySketchWorkersErrors mirrors the sequential validation rules.
func TestFindBySketchWorkersErrors(t *testing.T) {
	eng := New(DefaultOptions())
	if _, err := eng.FindBySketchWorkers(buildSketch(), 1, 2); err == nil {
		t.Error("unfrozen engine should fail")
	}
	built := buildEngine(t)
	if _, err := built.FindBySketchWorkers(buildSketch(), 0, 2); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := built.FindBySketchWorkers(nil, 1, 2); err == nil {
		t.Error("empty sketch should fail")
	}
	bad := []Shape{square(0, 0, 1), NewPolyline(Pt(0, 0))}
	if _, err := built.FindBySketchWorkers(bad, 1, 2); err == nil {
		t.Error("invalid sketch shape should fail")
	}
}

// TestSortMatchesDeterministic asserts distance ties are broken on
// ShapeID, so hash-bucket iteration order can never leak into results.
func TestSortMatchesDeterministic(t *testing.T) {
	mk := func(ids ...int) []Match {
		ms := make([]Match, len(ids))
		for i, id := range ids {
			ms[i] = Match{ShapeID: id, Distance: 0.25}
		}
		return ms
	}
	for _, perm := range [][]int{{3, 1, 2}, {2, 3, 1}, {1, 2, 3}} {
		ms := mk(perm...)
		ms = append(ms, Match{ShapeID: 0, Distance: 0.5})
		sortMatches(ms)
		for i, want := range []int{1, 2, 3, 0} {
			if ms[i].ShapeID != want {
				t.Fatalf("perm %v: rank %d = shape %d, want %d", perm, i, ms[i].ShapeID, want)
			}
		}
	}
}
