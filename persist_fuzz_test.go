package geosir

import (
	"bytes"
	"testing"
)

// fuzzSeedEngine builds a small engine without a *testing.T (f.Add runs
// before the fuzz worker has one).
func fuzzSeedEngine() *Engine {
	eng := New(DefaultOptions())
	_ = eng.AddImage(0, []Shape{
		NewPolygon(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)),
		NewPolyline(Pt(1, 1), Pt(2, 3), Pt(3, 1)),
	})
	_ = eng.AddImage(7, []Shape{
		NewPolygon(Pt(0, 0), Pt(3, 0), Pt(0, 5)),
	})
	return eng
}

// FuzzLoad feeds arbitrary bytes to the snapshot readers. Invariants:
// neither Load nor LoadPartial may panic or over-allocate, and anything
// Load accepts must re-save canonically (save → load → save is a byte
// fixed point, so no accepted stream can describe an ambiguous base).
func FuzzLoad(f *testing.F) {
	eng := fuzzSeedEngine()
	var v1, v2 bytes.Buffer
	if err := eng.SaveAs(&v1, FormatGSIR1); err != nil {
		f.Fatal(err)
	}
	if err := eng.SaveAs(&v2, FormatGSIR2); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add([]byte(magicGSIR1))
	f.Add([]byte(magicGSIR2))
	f.Add([]byte("GSIR2\n\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if le, err := Load(bytes.NewReader(data)); err == nil {
			var b1 bytes.Buffer
			if err := le.Save(&b1); err != nil {
				t.Fatalf("accepted stream failed to re-save: %v", err)
			}
			le2, err := Load(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatalf("canonical re-save failed to load: %v", err)
			}
			var b2 bytes.Buffer
			if err := le2.Save(&b2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("save→load→save is not a byte fixed point (%d vs %d bytes)", b1.Len(), b2.Len())
			}
			if le2.NumImages() != le.NumImages() || le2.NumShapes() != le.NumShapes() {
				t.Fatalf("reloaded counts differ: %d/%d vs %d/%d",
					le2.NumImages(), le2.NumShapes(), le.NumImages(), le.NumShapes())
			}
		}
		// The salvage path must hold the same no-panic guarantee, and its
		// accounting must cover every declared image.
		if _, rec, err := LoadPartial(bytes.NewReader(data)); err == nil {
			if got := rec.ImagesLoaded + len(rec.Dropped) + rec.ImagesUnread; got != rec.ImagesExpected {
				t.Fatalf("recovery accounting: %d loaded + %d dropped + %d unread ≠ %d expected",
					rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, rec.ImagesExpected)
			}
		}
	})
}

// FuzzLoadV3 feeds arbitrary bytes to the GSIR3 section readers (strict
// and salvage). Invariants: no panic, no over-allocation, anything the
// strict loader accepts re-saves canonically as GSIR3 (save → load →
// save is a byte fixed point), and the salvage accounting covers every
// declared image — salvage-or-refuse, never a silently wrong base.
func FuzzLoadV3(f *testing.F) {
	eng := fuzzSeedEngine()
	if err := eng.Freeze(); err != nil {
		f.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := eng.SaveAs(&v3, FormatGSIR3); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add(v3.Bytes()[:v3.Len()/2])
	f.Add(v3.Bytes()[:magicLen+v3HeaderLen])
	f.Add([]byte(magicGSIR3))
	// Header claiming an absurd section count.
	f.Add([]byte("GSIR3\n\x01\x00\xff\xff\xff\xff\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		le, err := Load(bytes.NewReader(data))
		if err == nil && bytes.HasPrefix(data, []byte(magicGSIR3)) {
			// A GSIR3 stream always assembles a frozen engine, so it must
			// round-trip through the canonical v3 writer.
			var b1 bytes.Buffer
			if err := le.SaveAs(&b1, FormatGSIR3); err != nil {
				t.Fatalf("accepted GSIR3 stream failed to re-save: %v", err)
			}
			le2, err := Load(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatalf("canonical re-save failed to load: %v", err)
			}
			var b2 bytes.Buffer
			if err := le2.SaveAs(&b2, FormatGSIR3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("GSIR3 save→load→save is not a byte fixed point (%d vs %d bytes)", b1.Len(), b2.Len())
			}
			if le2.NumImages() != le.NumImages() || le2.NumShapes() != le.NumShapes() || le2.NumEntries() != le.NumEntries() {
				t.Fatalf("reloaded counts differ: %d/%d/%d vs %d/%d/%d",
					le2.NumImages(), le2.NumShapes(), le2.NumEntries(),
					le.NumImages(), le.NumShapes(), le.NumEntries())
			}
		}
		if _, rec, err := LoadPartial(bytes.NewReader(data)); err == nil {
			if got := rec.ImagesLoaded + len(rec.Dropped) + rec.ImagesUnread; got != rec.ImagesExpected {
				t.Fatalf("recovery accounting: %d loaded + %d dropped + %d unread ≠ %d expected",
					rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, rec.ImagesExpected)
			}
		}
	})
}
