package geosir

import (
	"bytes"
	"testing"
)

// fuzzSeedEngine builds a small engine without a *testing.T (f.Add runs
// before the fuzz worker has one).
func fuzzSeedEngine() *Engine {
	eng := New(DefaultOptions())
	_ = eng.AddImage(0, []Shape{
		NewPolygon(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)),
		NewPolyline(Pt(1, 1), Pt(2, 3), Pt(3, 1)),
	})
	_ = eng.AddImage(7, []Shape{
		NewPolygon(Pt(0, 0), Pt(3, 0), Pt(0, 5)),
	})
	return eng
}

// FuzzLoad feeds arbitrary bytes to the snapshot readers. Invariants:
// neither Load nor LoadPartial may panic or over-allocate, and anything
// Load accepts must re-save canonically (save → load → save is a byte
// fixed point, so no accepted stream can describe an ambiguous base).
func FuzzLoad(f *testing.F) {
	eng := fuzzSeedEngine()
	var v1, v2 bytes.Buffer
	if err := eng.SaveAs(&v1, FormatGSIR1); err != nil {
		f.Fatal(err)
	}
	if err := eng.SaveAs(&v2, FormatGSIR2); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add([]byte(magicGSIR1))
	f.Add([]byte(magicGSIR2))
	f.Add([]byte("GSIR2\n\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if le, err := Load(bytes.NewReader(data)); err == nil {
			var b1 bytes.Buffer
			if err := le.Save(&b1); err != nil {
				t.Fatalf("accepted stream failed to re-save: %v", err)
			}
			le2, err := Load(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatalf("canonical re-save failed to load: %v", err)
			}
			var b2 bytes.Buffer
			if err := le2.Save(&b2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("save→load→save is not a byte fixed point (%d vs %d bytes)", b1.Len(), b2.Len())
			}
			if le2.NumImages() != le.NumImages() || le2.NumShapes() != le.NumShapes() {
				t.Fatalf("reloaded counts differ: %d/%d vs %d/%d",
					le2.NumImages(), le2.NumShapes(), le.NumImages(), le.NumShapes())
			}
		}
		// The salvage path must hold the same no-panic guarantee, and its
		// accounting must cover every declared image.
		if _, rec, err := LoadPartial(bytes.NewReader(data)); err == nil {
			if got := rec.ImagesLoaded + len(rec.Dropped) + rec.ImagesUnread; got != rec.ImagesExpected {
				t.Fatalf("recovery accounting: %d loaded + %d dropped + %d unread ≠ %d expected",
					rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, rec.ImagesExpected)
			}
		}
	})
}
