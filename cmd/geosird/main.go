// Command geosird is the GeoSIR network daemon: it serves a frozen
// engine loaded from a GSIR1/GSIR2/GSIR3 snapshot over an HTTP JSON API.
//
//	geosird -snapshot base.gsir -addr :8080
//	geosird -snapshot sharded-snapshot-dir/ -addr :8080
//	geosird -snapshot sharded-snapshot-dir/ -load-mode mmap -addr :8080
//
// A file path serves a single engine; a directory path serves a
// ShardedEngine from per-shard snapshot files (a damaged shard degrades
// to partial results and is reported in /statz). -load-mode mmap maps
// GSIR3 snapshots and serves the hot sections straight off the page
// cache — open is O(1) in base size and the base may exceed RAM;
// non-GSIR3 snapshots silently fall back to a heap load per file.
//
// Endpoints: POST /v1/search (unified), /v1/similar, /v1/approximate,
// /v1/sketch, /v1/topological, POST /admin/reload, GET /healthz /readyz
// /metrics /statz. See internal/server for the wire format.
//
// Signals: SIGHUP hot-swaps the snapshot (re-reads the active snapshot
// path with zero downtime — the old engine serves until the new one is
// frozen); SIGINT/SIGTERM shut down gracefully, draining in-flight
// requests.
//
// -cache-bytes N enables the query-result cache: canonically
// fingerprinted search responses are served from a bounded LRU with
// singleflight coalescing, invalidated atomically on every snapshot
// hot-swap (see internal/qcache and DESIGN.md §4.11). 0 (the default)
// disables it. Responses carry their disposition in the X-Geosir-Cache
// header.
//
// -pprof 127.0.0.1:6060 additionally serves net/http/pprof on a
// separate debug listener (keep it on loopback); it is off by default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	geosir "repro"
	"repro/internal/server"
)

func main() {
	var (
		snapshot    = flag.String("snapshot", "", "snapshot file or sharded snapshot directory to serve (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 4×GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max queued queries before shedding 429 (0 = 4×max-inflight)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max time a query may wait for a slot before shedding 503")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request execution deadline")
		maxBody     = flag.Int64("max-body", 8<<20, "max request body bytes")
		cacheBytes  = flag.Int64("cache-bytes", 0, "query-result cache budget in bytes (0 = caching off)")
		cacheEnts   = flag.Int("cache-entries", 0, "query-result cache entry bound (0 = derived from -cache-bytes)")
		accessLog   = flag.Bool("access-log", false, "write JSON access logs to stderr")
		drainWait   = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = disabled)")
		ingest      = flag.Bool("ingest", false, "enable live ingestion on a sharded snapshot directory (POST/DELETE /v1/images, background compaction)")
		compactAt   = flag.Int("compact-threshold", 0, "delta shape count that triggers background compaction (0 = default, negative = manual /admin/compact only; needs -ingest)")
		walNoSync   = flag.Bool("wal-nosync", false, "skip the per-write WAL fsync — a crash may lose acknowledged writes (benchmarks only; needs -ingest)")
		execPolicy  = flag.String("exec", "auto", "default execution policy for requests that do not set one: auto (adapt fan-out to load), fanout, sequential")
		loadMode    = flag.String("load-mode", "heap", "snapshot load mode: heap (decode into memory) or mmap (serve GSIR3 sections off the page cache; non-GSIR3 files fall back to heap)")
	)
	flag.Parse()
	defaultExec, err := geosir.ParseExecPolicy(*execPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geosird:", err)
		os.Exit(2)
	}
	mode, err := geosir.ParseLoadMode(*loadMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geosird:", err)
		os.Exit(2)
	}
	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		CacheBytes:     *cacheBytes,
		CacheEntries:   *cacheEnts,
		DefaultExec:    defaultExec,
		LoadMode:       mode,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if *ingest {
		cfg.Ingest = &server.IngestOptions{CompactThreshold: *compactAt, NoSync: *walNoSync}
	}
	if err := run(*snapshot, *addr, cfg, *drainWait, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "geosird:", err)
		os.Exit(1)
	}
}

func run(snapshot, addr string, cfg server.Config, drainWait time.Duration, pprofAddr string) error {
	if snapshot == "" {
		return errors.New("need -snapshot FILE")
	}
	logger := log.New(os.Stderr, "geosird: ", log.LstdFlags)
	if cfg.CacheBytes > 0 {
		logger.Printf("query-result cache: %d bytes, singleflight coalescing on", cfg.CacheBytes)
	}
	srv := server.New(cfg)

	start := time.Now()
	info, err := srv.LoadSnapshot(snapshot)
	if err != nil {
		return err
	}
	sv := srv.Serving()
	logger.Printf("loaded %s (%s, %d images, %d shapes, %d entries) in %v",
		snapshot, info.FormatName, sv.NumImages(), sv.NumShapes(), sv.NumEntries(),
		time.Since(start).Round(time.Millisecond))
	if cfg.Ingest != nil {
		logger.Printf("live ingestion on: /v1/images accepts writes (compact threshold %d, wal sync %v)",
			cfg.Ingest.CompactThreshold, !cfg.Ingest.NoSync)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Printf("serving on %s", ln.Addr())

	// The profiling endpoints live on their own listener, never on the
	// public API mux: -pprof is meant for a loopback address an operator
	// reaches over SSH, and leaving it empty (the default) keeps the
	// debug surface entirely out of the process.
	if pprofAddr != "" {
		dln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		go func() {
			dbg := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := dbg.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	// SIGHUP → hot snapshot swap; SIGINT/SIGTERM → graceful drain.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			logger.Printf("SIGHUP: reloading %s", snapshot)
			if _, err := srv.LoadSnapshot(snapshot); err != nil {
				logger.Printf("reload failed (still serving previous snapshot): %v", err)
				continue
			}
			e := srv.Serving()
			logger.Printf("reloaded %s (%d images, %d shapes)", snapshot, e.NumImages(), e.NumShapes())
		}
	}()

	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-term:
		logger.Printf("%v: draining in-flight requests (up to %v)", sig, drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		logger.Printf("drained, bye")
		return nil
	}
}
