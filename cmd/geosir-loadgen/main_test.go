package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	geosir "repro"
	"repro/internal/server"
	"repro/internal/synth"
)

// startSharded serves a small sharded engine over httptest.
func startSharded(t *testing.T, shards int) *httptest.Server {
	t.Helper()
	se := geosir.NewSharded(geosir.DefaultOptions(), shards)
	spec := synth.PaperSpec(0.002, 11)
	spec.Images = 12
	for _, img := range synth.GenerateBase(spec) {
		valid := img.Shapes[:0]
		for _, sh := range img.Shapes {
			if sh.Validate() == nil {
				valid = append(valid, sh)
			}
		}
		if len(valid) == 0 {
			continue
		}
		if err := se.AddImage(img.ID, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	if err := s.SetServing(se, "(loadgen-test)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestSmokeAgainstShardedServer(t *testing.T) {
	ts := startSharded(t, 3)
	// Full smoke including the shard-health probe and /v1/search kind.
	if err := run(ts.URL, time.Second, "1", 0, 2, "", "", "uniform", 1.1, 1, "", "", 0, true, 3, "", 0, false); err != nil {
		t.Fatalf("smoke: %v", err)
	}
	// Wrong shard expectation must fail.
	if err := run(ts.URL, time.Second, "1", 0, 2, "", "", "uniform", 1.1, 1, "", "", 0, true, 5, "", 0, false); err == nil {
		t.Fatal("expect-shards mismatch should fail the smoke")
	} else if !strings.Contains(err.Error(), "shards") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckShardsRejectsUnsharded(t *testing.T) {
	eng := geosir.New(geosir.DefaultOptions())
	spec := synth.PaperSpec(0.002, 11)
	spec.Images = 6
	for _, img := range synth.GenerateBase(spec) {
		valid := img.Shapes[:0]
		for _, sh := range img.Shapes {
			if sh.Validate() == nil {
				valid = append(valid, sh)
			}
		}
		if len(valid) == 0 {
			continue
		}
		if err := eng.AddImage(img.ID, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	if err := s.SetEngine(eng, "(single)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := checkShards(http.DefaultClient, ts.URL, 2); err == nil {
		t.Fatal("single-engine server should fail a shard expectation")
	}
}

func TestVariantPickerZipfSkewsLowRanks(t *testing.T) {
	newPick, err := variantPicker("zipf", 1.1, 64)
	if err != nil {
		t.Fatal(err)
	}
	pick := newPick(rand.New(rand.NewSource(42)))
	counts := make([]int, 64)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[pick(64)]++
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	if head < draws/3 {
		t.Fatalf("zipf s=1.1: top-4 variants got %d/%d draws, want a skewed head", head, draws)
	}
	// Uniform must not show that skew.
	newPick, err = variantPicker("uniform", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	pick = newPick(rand.New(rand.NewSource(42)))
	counts = make([]int, 64)
	for i := 0; i < draws; i++ {
		counts[pick(64)]++
	}
	head = counts[0] + counts[1] + counts[2] + counts[3]
	if head > draws/6 {
		t.Fatalf("uniform: top-4 variants got %d/%d draws, too skewed", head, draws)
	}
	// Invalid configurations are rejected.
	if _, err := variantPicker("zipf", 1.0, 64); err == nil {
		t.Fatal("zipf s=1.0 should be rejected")
	}
	if _, err := variantPicker("pareto", 1.1, 64); err == nil {
		t.Fatal("unknown dist should be rejected")
	}
}

func TestParseLevels(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []int
		ok   bool
	}{
		{"8", []int{8}, true},
		{"1,8,64", []int{1, 8, 64}, true},
		{" 1 , 4 ", []int{1, 4}, true},
		{"1,,4", []int{1, 4}, true},
		{"", nil, false},
		{"0", nil, false},
		{"-2", nil, false},
		{"eight", nil, false},
	} {
		got, err := parseLevels(tc.spec)
		if tc.ok != (err == nil) {
			t.Fatalf("parseLevels(%q): err=%v, want ok=%v", tc.spec, err, tc.ok)
		}
		if tc.ok && !equalInts(got, tc.want) {
			t.Fatalf("parseLevels(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBuildKindsExecKnob pins that -exec lands in the search bodies (the
// only kind whose endpoint accepts it) and stays out when empty.
func TestBuildKindsExecKnob(t *testing.T) {
	ks := buildKinds(1, 2, "sequential")
	found := false
	for _, kd := range ks {
		if kd.name != "search" {
			continue
		}
		for _, body := range kd.bodies {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatal(err)
			}
			if m["exec"] != "sequential" {
				t.Fatalf("search body lacks exec: %s", body)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no search bodies generated")
	}
	for _, kd := range buildKinds(1, 2, "") {
		if kd.name != "search" {
			continue
		}
		for _, body := range kd.bodies {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatal(err)
			}
			if _, ok := m["exec"]; ok {
				t.Fatalf("empty -exec leaked into body: %s", body)
			}
		}
	}
}

// TestConcurrencySweep runs a two-level sweep and checks the JSON output
// carries one row per level plus sane aggregates.
func TestConcurrencySweep(t *testing.T) {
	ts := startSharded(t, 2)
	out := t.TempDir() + "/sweep.json"
	if err := run(ts.URL, 700*time.Millisecond, "1,2", 0, 2, "auto", "search=1", "uniform", 1.1, 1, "sweep-test", out, 0, false, 0, "", 0, false); err != nil {
		t.Fatalf("sweep run: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bench BenchOut
	if err := json.Unmarshal(blob, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Exec != "auto" {
		t.Fatalf("exec = %q, want auto", bench.Exec)
	}
	if bench.Concurrency != 0 {
		t.Fatalf("multi-level sweep should zero the single concurrency field, got %d", bench.Concurrency)
	}
	if len(bench.Sweep) != 2 {
		t.Fatalf("sweep rows = %d, want 2", len(bench.Sweep))
	}
	total := 0
	for i, lv := range bench.Sweep {
		want := []int{1, 2}[i]
		if lv.Concurrency != want {
			t.Fatalf("row %d concurrency = %d, want %d", i, lv.Concurrency, want)
		}
		if lv.Requests == 0 || lv.AchievedQPS <= 0 || lv.P50Ms <= 0 {
			t.Fatalf("row %d degenerate: %+v", i, lv)
		}
		if lv.Errors > 0 {
			t.Fatalf("row %d has %d errors: %v", i, lv.Errors, bench.Status)
		}
		total += lv.Requests
	}
	if total != bench.Requests {
		t.Fatalf("sweep rows sum to %d requests, bench says %d", total, bench.Requests)
	}
	// A bad exec policy is rejected before any traffic.
	if err := run(ts.URL, time.Second, "1", 0, 2, "nope", "", "uniform", 1.1, 1, "", "", 0, false, 0, "", 0, false); err == nil {
		t.Fatal("unknown -exec should fail")
	}
}

func TestParseMixIncludesSearch(t *testing.T) {
	ks := buildKinds(1, 2, "")
	table, err := parseMix("search=1", ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1 || ks[table[0]].name != "search" {
		t.Fatalf("mix table = %v", table)
	}
	if _, err := parseMix("nope=1", ks); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

// startIngest serves a sharded snapshot directory with live ingestion
// enabled, as geosird -ingest would.
func startIngest(t *testing.T) *httptest.Server {
	t.Helper()
	se := geosir.NewSharded(geosir.DefaultOptions(), 2)
	spec := synth.PaperSpec(0.002, 11)
	spec.Images = 12
	for _, img := range synth.GenerateBase(spec) {
		valid := img.Shapes[:0]
		for _, sh := range img.Shapes {
			if sh.Validate() == nil {
				valid = append(valid, sh)
			}
		}
		if len(valid) == 0 {
			continue
		}
		if err := se.AddImage(img.ID, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Freeze(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Ingest: &server.IngestOptions{CompactThreshold: -1, NoSync: true}})
	if _, err := s.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestIngestSmoke(t *testing.T) {
	ts := startIngest(t)
	if err := run(ts.URL, time.Second, "1", 0, 2, "", "", "uniform", 1.1, 1, "", "", 0, false, 0, "", 0, true); err != nil {
		t.Fatalf("ingest smoke: %v", err)
	}
	// Read-only server: the smoke must fail with the insert refused.
	ro := startSharded(t, 2)
	if err := run(ro.URL, time.Second, "1", 0, 2, "", "", "uniform", 1.1, 1, "", "", 0, false, 0, "", 0, true); err == nil {
		t.Fatal("ingest smoke should fail against a read-only server")
	}
}

func TestWriteRatioWorkload(t *testing.T) {
	ts := startIngest(t)
	out := t.TempDir() + "/ingest.json"
	if err := run(ts.URL, 1500*time.Millisecond, "2", 0, 2, "", "similar=1", "uniform", 1.1, 1, "", out, 0, false, 0, "", 0.5, false); err != nil {
		t.Fatalf("write workload: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bench BenchOut
	if err := json.Unmarshal(blob, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.WriteRatio != 0.5 || bench.Inserts == 0 {
		t.Fatalf("write accounting: ratio=%v inserts=%d deletes=%d", bench.WriteRatio, bench.Inserts, bench.Deletes)
	}
	ing, ok := bench.ByKind[ingestKindName]
	if !ok || ing.Requests == 0 {
		t.Fatalf("no ingest kind in summary: %+v", bench.ByKind)
	}
	if ing.Errors > 0 {
		t.Fatalf("%d/%d write requests errored: %v", ing.Errors, ing.Requests, bench.Status)
	}
	if bench.Errors-ing.Errors > 0 {
		t.Fatalf("read-side errors during writes: %v", bench.Status)
	}
}
