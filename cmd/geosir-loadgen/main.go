// Command geosir-loadgen is a closed-loop load generator for geosird. It
// drives a mixed query workload (similar / approximate / sketch /
// topological) at a target QPS (or flat out), measures end-to-end
// latency, and prints a throughput/latency summary, optionally writing
// it to a JSON file (BENCH_serve.json) so serving performance is tracked
// across PRs.
//
//	geosir-loadgen -addr http://127.0.0.1:8080 -duration 10s -concurrency 16 -out BENCH_serve.json
//	geosir-loadgen -addr http://127.0.0.1:8080 -concurrency 1,8,64   # sweep levels, one row each
//	geosir-loadgen -addr http://127.0.0.1:8080 -exec fanout -mix search=1   # pin the exec policy
//	geosir-loadgen -addr http://127.0.0.1:8080 -dist zipf -zipf-s 1.1   # skewed key popularity
//	geosir-loadgen -addr http://127.0.0.1:8080 -smoke   # readiness probe + one query of each kind
//	geosir-loadgen -addr http://127.0.0.1:8080 -smoke -expect-shards 4   # also assert shard health
//	geosir-loadgen -addr http://127.0.0.1:8080 -write-ratio 0.2   # mixed read/write (needs geosird -ingest)
//	geosir-loadgen -addr http://127.0.0.1:8080 -ingest-smoke   # insert → query → compact → query → delete
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/synth"
)

type kind struct {
	name   string
	path   string
	bodies [][]byte // pre-marshalled request variants
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "geosird base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load (per level when sweeping)")
		concurrency = flag.String("concurrency", "8", "closed-loop worker count, or a comma list (e.g. 1,8,64) to sweep levels")
		qps         = flag.Float64("qps", 0, "target aggregate QPS (0 = unthrottled)")
		k           = flag.Int("k", 3, "matches per query")
		execPolicy  = flag.String("exec", "", "execution policy set on /v1/search bodies: auto, fanout or sequential (empty = omit, server default applies)")
		mixSpec     = flag.String("mix", "similar=6,approximate=2,sketch=1,topological=1,search=2", "workload mix weights")
		dist        = flag.String("dist", "uniform", "request-variant key distribution: uniform or zipf")
		zipfS       = flag.Float64("zipf-s", 1.1, "Zipf exponent for -dist zipf (must be > 1)")
		seed        = flag.Int64("seed", 1, "query-shape generator seed")
		label       = flag.String("label", "", "label recorded in the JSON summary (e.g. cache-off)")
		out         = flag.String("out", "", "write the JSON summary to this file")
		wait        = flag.Duration("wait", 0, "poll /readyz up to this long before starting")
		smoke       = flag.Bool("smoke", false, "probe mode: healthz, readyz, one query of each kind; exit 0/1")
		expShards   = flag.Int("expect-shards", 0, "with -smoke: require /statz to report exactly N live shards")
		expLoadMode = flag.String("expect-load-mode", "", "with -smoke: require /statz storage to report this load mode (heap or mmap; mmap also requires mapped bytes)")
		writeRatio  = flag.Float64("write-ratio", 0, "fraction of requests that are live writes against /v1/images (needs geosird -ingest)")
		ingestSmoke = flag.Bool("ingest-smoke", false, "probe live ingestion: insert → query → compact → query → delete; exit 0/1")
	)
	flag.Parse()
	if err := run(*addr, *duration, *concurrency, *qps, *k, *execPolicy, *mixSpec, *dist, *zipfS, *seed, *label, *out, *wait, *smoke, *expShards, *expLoadMode, *writeRatio, *ingestSmoke); err != nil {
		fmt.Fprintln(os.Stderr, "geosir-loadgen:", err)
		os.Exit(1)
	}
}

// parseLevels parses the -concurrency spec: a single worker count or a
// comma list of sweep levels, each ≥ 1.
func parseLevels(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -concurrency level %q (want a positive integer)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-concurrency %q selects no levels", spec)
	}
	return out, nil
}

// buildKinds pre-marshals request-body variants for every query kind so
// the measurement loop does no encoding work. A non-empty exec policy is
// stamped into the /v1/search bodies (the only endpoint exposing the
// knob); the other kinds always run under the server's default.
func buildKinds(seed int64, k int, exec string) []kind {
	rng := rand.New(rand.NewSource(seed))
	const variants = 64
	shape := func() server.WireShape {
		for {
			p := synth.Prototype(rng, rng.Intn(6), 12, false)
			if p.Validate() != nil {
				continue
			}
			ws := server.WireShape{Closed: p.Closed, Points: make([][2]float64, len(p.Pts))}
			for i, pt := range p.Pts {
				ws.Points[i] = [2]float64{pt.X, pt.Y}
			}
			return ws
		}
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	ks := []kind{
		{name: "similar", path: "/v1/similar"},
		{name: "approximate", path: "/v1/approximate"},
		{name: "sketch", path: "/v1/sketch"},
		{name: "topological", path: "/v1/topological"},
		{name: "search", path: "/v1/search"},
	}
	for v := 0; v < variants; v++ {
		ks[0].bodies = append(ks[0].bodies, mustJSON(map[string]any{"shape": shape(), "k": k}))
		ks[1].bodies = append(ks[1].bodies, mustJSON(map[string]any{"shape": shape(), "k": k}))
		ks[2].bodies = append(ks[2].bodies, mustJSON(map[string]any{"shapes": []server.WireShape{shape(), shape()}, "k": k}))
		ks[3].bodies = append(ks[3].bodies, mustJSON(map[string]any{"query": "similar(q)", "binds": map[string]server.WireShape{"q": shape()}}))
		search := map[string]any{"shape": shape(), "k": k, "mode": "auto"}
		if exec != "" {
			search["exec"] = exec
		}
		ks[4].bodies = append(ks[4].bodies, mustJSON(search))
	}
	return ks
}

// parseMix turns "similar=6,sketch=1" into a weighted pick table over kinds.
func parseMix(spec string, ks []kind) ([]int, error) {
	weights := make([]int, len(ks))
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for i := range ks {
			if ks[i].name == strings.TrimSpace(name) {
				weights[i] = w
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown kind %q (want similar|approximate|sketch|topological|search)", name)
		}
	}
	var table []int
	for i, w := range weights {
		for j := 0; j < w; j++ {
			table = append(table, i)
		}
	}
	if len(table) == 0 {
		return nil, fmt.Errorf("mix %q selects nothing", spec)
	}
	return table, nil
}

func waitReady(client *http.Client, addr string, wait time.Duration) error {
	if wait <= 0 {
		return nil
	}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", wait, err)
			}
			return fmt.Errorf("server not ready after %v", wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkShards asserts via /statz that the server is backed by a sharded
// snapshot with exactly expect live, undropped shards.
func checkShards(client *http.Client, addr string, expect int) error {
	resp, err := client.Get(addr + "/statz")
	if err != nil {
		return fmt.Errorf("/statz: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("/statz: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var stz struct {
		Snapshot *struct {
			Shards []struct {
				Shard   int    `json:"shard"`
				Live    bool   `json:"live"`
				Shapes  int    `json:"shapes"`
				Dropped bool   `json:"dropped"`
				Error   string `json:"error"`
			} `json:"shards"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &stz); err != nil {
		return fmt.Errorf("/statz: %w", err)
	}
	if stz.Snapshot == nil || len(stz.Snapshot.Shards) == 0 {
		return fmt.Errorf("expected %d shards, but /statz reports no sharded snapshot", expect)
	}
	if got := len(stz.Snapshot.Shards); got != expect {
		return fmt.Errorf("expected %d shards, /statz reports %d", expect, got)
	}
	for _, sh := range stz.Snapshot.Shards {
		if sh.Dropped {
			return fmt.Errorf("shard %d dropped: %s", sh.Shard, sh.Error)
		}
		if sh.Shapes > 0 && !sh.Live {
			return fmt.Errorf("shard %d has %d shapes but is not live", sh.Shard, sh.Shapes)
		}
	}
	fmt.Printf("%-16s ok (%d shards live)\n", "/statz", expect)
	return nil
}

// checkLoadMode asserts via /statz that the snapshot is served in the
// expected storage mode. An mmap expectation also requires a nonzero
// mapped footprint — "mmap" with nothing mapped means the daemon fell
// back to heap decoding without saying so.
func checkLoadMode(client *http.Client, addr, expect string) error {
	resp, err := client.Get(addr + "/statz")
	if err != nil {
		return fmt.Errorf("/statz: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("/statz: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var stz struct {
		Storage *struct {
			LoadMode    string `json:"load_mode"`
			MappedBytes int64  `json:"mapped_bytes"`
		} `json:"storage"`
	}
	if err := json.Unmarshal(body, &stz); err != nil {
		return fmt.Errorf("/statz: %w", err)
	}
	if stz.Storage == nil {
		return fmt.Errorf("expected load mode %q, but /statz reports no storage section", expect)
	}
	if stz.Storage.LoadMode != expect {
		return fmt.Errorf("expected load mode %q, /statz reports %q", expect, stz.Storage.LoadMode)
	}
	if expect == "mmap" && stz.Storage.MappedBytes <= 0 {
		return fmt.Errorf("load mode is mmap but /statz reports %d mapped bytes", stz.Storage.MappedBytes)
	}
	fmt.Printf("%-16s ok (load mode %s, %d bytes mapped)\n", "/statz", expect, stz.Storage.MappedBytes)
	return nil
}

func runSmoke(client *http.Client, addr string, ks []kind, expShards int, expLoadMode string) error {
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(addr + probe)
		if err != nil {
			return fmt.Errorf("%s: %w", probe, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: %d %s", probe, resp.StatusCode, bytes.TrimSpace(body))
		}
		fmt.Printf("%-16s ok\n", probe)
	}
	for _, kd := range ks {
		resp, err := client.Post(addr+kd.path, "application/json", bytes.NewReader(kd.bodies[0]))
		if err != nil {
			return fmt.Errorf("%s: %w", kd.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: %d %s", kd.path, resp.StatusCode, bytes.TrimSpace(body))
		}
		fmt.Printf("%-16s ok (%d bytes)\n", kd.path, len(body))
	}
	if expShards > 0 {
		if err := checkShards(client, addr, expShards); err != nil {
			return err
		}
	}
	if expLoadMode != "" {
		if err := checkLoadMode(client, addr, expLoadMode); err != nil {
			return err
		}
	}
	fmt.Println("smoke ok")
	return nil
}

// runIngestSmoke probes the live-ingestion loop end to end: insert a
// uniquely shaped image, query it back, fold it with /admin/compact,
// query it again off the frozen shard, then delete it and verify it is
// gone. Any prior leftover of the probe id is deleted first so the probe
// is re-runnable against a long-lived server.
func runIngestSmoke(client *http.Client, addr string) error {
	const probeID = 987654321
	probe := server.WireShape{Closed: true,
		Points: [][2]float64{{0, 0}, {9, 0}, {11, 5}, {4.5, 9}, {-2, 5}}}

	do := func(step, method, path string, body any) (int, []byte, error) {
		var rd io.Reader
		if body != nil {
			blob, err := json.Marshal(body)
			if err != nil {
				return 0, nil, err
			}
			rd = bytes.NewReader(blob)
		}
		req, err := http.NewRequest(method, addr+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if rd != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, fmt.Errorf("%s: %w", step, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, out, nil
	}
	expectTop := func(step string, want int) error {
		status, body, err := do(step, http.MethodPost, "/v1/search",
			map[string]any{"shape": probe, "k": 1, "mode": "exact"})
		if err != nil {
			return err
		}
		if status != 200 {
			return fmt.Errorf("%s: /v1/search: %d %s", step, status, bytes.TrimSpace(body))
		}
		var sr struct {
			Matches []struct {
				ImageID int `json:"image_id"`
			} `json:"matches"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			return fmt.Errorf("%s: %w", step, err)
		}
		got := -1
		if len(sr.Matches) > 0 {
			got = sr.Matches[0].ImageID
		}
		if want >= 0 && got != want {
			return fmt.Errorf("%s: top match is image %d, want %d", step, got, want)
		}
		if want < 0 && got == probeID {
			return fmt.Errorf("%s: deleted probe image still served", step)
		}
		fmt.Printf("%-16s ok\n", step)
		return nil
	}

	do("cleanup", http.MethodDelete, fmt.Sprintf("/v1/images/%d", probeID), nil)
	status, body, err := do("insert", http.MethodPost, "/v1/images",
		map[string]any{"id": probeID, "shapes": []server.WireShape{probe}})
	if err != nil {
		return err
	}
	if status != 200 {
		return fmt.Errorf("insert: %d %s (is geosird running with -ingest on a snapshot directory?)", status, bytes.TrimSpace(body))
	}
	fmt.Printf("%-16s ok\n", "insert")
	if err := expectTop("query-delta", probeID); err != nil {
		return err
	}
	if status, body, err = do("compact", http.MethodPost, "/admin/compact", nil); err != nil {
		return err
	} else if status != 200 {
		return fmt.Errorf("compact: %d %s", status, bytes.TrimSpace(body))
	}
	fmt.Printf("%-16s ok\n", "compact")
	if err := expectTop("query-frozen", probeID); err != nil {
		return err
	}
	if status, body, err = do("delete", http.MethodDelete, fmt.Sprintf("/v1/images/%d", probeID), nil); err != nil {
		return err
	} else if status != 200 {
		return fmt.Errorf("delete: %d %s", status, bytes.TrimSpace(body))
	}
	fmt.Printf("%-16s ok\n", "delete")
	if err := expectTop("query-deleted", -1); err != nil {
		return err
	}
	fmt.Println("ingest smoke ok")
	return nil
}

// ingestKindName labels write samples in the per-kind summary; writes
// are generated from -write-ratio, never from the -mix table (each needs
// a fresh unique image id, so bodies cannot be pre-marshalled).
const ingestKindName = "ingest"

// writer issues live writes against /v1/images: inserts of fresh
// worker-unique image ids, with every fourth write deleting one of its
// own earlier inserts. Ids start beyond any realistic base id so writes
// never collide with the served snapshot.
type writer struct {
	client   *http.Client
	addr     string
	rng      *rand.Rand
	nextID   int
	inserted []int
	writes   int
	inserts  int
	deletes  int
}

func newWriter(client *http.Client, addr string, worker int, seed int64) *writer {
	return &writer{
		client: client,
		addr:   addr,
		rng:    rand.New(rand.NewSource(seed + 104729*int64(worker+1))),
		nextID: 1<<30 + worker*(1<<20),
	}
}

// do issues one write and returns its HTTP status (0 on transport error).
func (wr *writer) do() int {
	wr.writes++
	if wr.writes%4 == 0 && len(wr.inserted) > 0 {
		id := wr.inserted[0]
		wr.inserted = wr.inserted[1:]
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/images/%d", wr.addr, id), nil)
		if err != nil {
			return 0
		}
		resp, err := wr.client.Do(req)
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wr.deletes++
		return resp.StatusCode
	}
	id := wr.nextID
	wr.nextID++
	body, err := json.Marshal(map[string]any{"id": id, "shapes": []server.WireShape{writeShape(wr.rng)}})
	if err != nil {
		return 0
	}
	resp, err := wr.client.Post(wr.addr+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == 200 {
		wr.inserted = append(wr.inserted, id)
		wr.inserts++
	}
	return resp.StatusCode
}

func writeShape(rng *rand.Rand) server.WireShape {
	for {
		p := synth.Prototype(rng, rng.Intn(6), 12, false)
		if p.Validate() != nil {
			continue
		}
		ws := server.WireShape{Closed: p.Closed, Points: make([][2]float64, len(p.Pts))}
		for i, pt := range p.Pts {
			ws.Points[i] = [2]float64{pt.X, pt.Y}
		}
		return ws
	}
}

// sample is one measured request.
type sample struct {
	kind   int8
	status int16
	cache  int8 // cacheNone or one of the cache* dispositions
	dur    time.Duration
}

// Cache dispositions parsed from the X-Geosir-Cache response header
// (absent when the server runs with caching disabled).
const (
	cacheNone int8 = iota
	cacheHit
	cacheMiss
	cacheCoalesced
	cacheBypass
)

func parseCacheHeader(v string) int8 {
	switch v {
	case "hit":
		return cacheHit
	case "miss":
		return cacheMiss
	case "coalesced":
		return cacheCoalesced
	case "bypass":
		return cacheBypass
	}
	return cacheNone
}

// KindSummary is the per-kind (and overall) latency/throughput report.
type KindSummary struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// SweepLevel is one concurrency level of a sweep: its worker count,
// how it ran, and the latency quantiles at that level.
type SweepLevel struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	AchievedQPS float64 `json:"achieved_qps"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// BenchOut is the JSON document written to -out.
type BenchOut struct {
	Label     string  `json:"label,omitempty"`
	Target    string  `json:"target"`
	DurationS float64 `json:"duration_s"`
	// Concurrency is the single swept worker count; 0 when Sweep holds
	// several levels.
	Concurrency int     `json:"concurrency"`
	TargetQPS   float64 `json:"target_qps"`
	Mix         string  `json:"mix"`
	Dist        string  `json:"dist"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	// Exec is the execution policy stamped into the /v1/search bodies
	// (empty = server default).
	Exec        string       `json:"exec,omitempty"`
	Sweep       []SweepLevel `json:"sweep,omitempty"`
	Requests    int          `json:"requests"`
	Errors      int          `json:"errors"`
	AchievedQPS float64      `json:"achieved_qps"`
	// Cache dispositions, counted from the X-Geosir-Cache response
	// header; all zero when the server runs uncached.
	CacheHits      int     `json:"cache_hits,omitempty"`
	CacheMisses    int     `json:"cache_misses,omitempty"`
	CacheCoalesced int     `json:"cache_coalesced,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	// Live-write accounting when -write-ratio > 0: the configured ratio
	// and the acknowledged mutations issued against /v1/images.
	WriteRatio float64                `json:"write_ratio,omitempty"`
	Inserts    int                    `json:"inserts,omitempty"`
	Deletes    int                    `json:"deletes,omitempty"`
	Overall    KindSummary            `json:"overall"`
	ByKind     map[string]KindSummary `json:"by_kind"`
	Status     map[string]int         `json:"status"`
}

func summarize(samples []sample, pick func(sample) bool) KindSummary {
	var durs []time.Duration
	var sum time.Duration
	out := KindSummary{}
	for _, s := range samples {
		if !pick(s) {
			continue
		}
		out.Requests++
		if s.status != 200 {
			out.Errors++
			continue // error latencies would pollute the quantiles
		}
		durs = append(durs, s.dur)
		sum += s.dur
	}
	if len(durs) == 0 {
		return out
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) float64 {
		i := int(p*float64(len(durs))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(durs) {
			i = len(durs) - 1
		}
		return float64(durs[i]) / float64(time.Millisecond)
	}
	out.MeanMs = float64(sum) / float64(len(durs)) / float64(time.Millisecond)
	out.P50Ms = q(0.50)
	out.P95Ms = q(0.95)
	out.P99Ms = q(0.99)
	out.MaxMs = float64(durs[len(durs)-1]) / float64(time.Millisecond)
	return out
}

// variantPicker returns a factory building one per-worker chooser over
// the pre-marshalled body variants (rand.Zipf carries draw state, so it
// cannot be shared across goroutines). "uniform" spreads requests
// evenly; "zipf" skews them so a few hot variants dominate (exponent s;
// rank-1 mass grows with s), which exercises server-side behavior under
// realistic key popularity instead of a flat synthetic spread.
func variantPicker(dist string, zipfS float64, nVariants int) (func(rng *rand.Rand) func(n int) int, error) {
	switch dist {
	case "uniform":
		return func(rng *rand.Rand) func(n int) int {
			return func(n int) int { return rng.Intn(n) }
		}, nil
	case "zipf":
		if zipfS <= 1 {
			return nil, fmt.Errorf("-zipf-s must be > 1, got %v", zipfS)
		}
		if nVariants < 1 {
			nVariants = 1
		}
		return func(rng *rand.Rand) func(n int) int {
			z := rand.NewZipf(rng, zipfS, 1, uint64(nVariants-1))
			return func(n int) int { return int(z.Uint64()) % n }
		}, nil
	default:
		return nil, fmt.Errorf("unknown -dist %q (want uniform or zipf)", dist)
	}
}

// runLevel drives one closed-loop measurement at a fixed worker count:
// each worker issues, waits, issues again. With qps > 0 the aggregate
// rate is split evenly and each worker paces on its own schedule
// (absolute next-fire times, so a slow response doesn't permanently
// lower the rate). It returns the collected samples, the wall-clock
// elapsed, and the per-worker writers (nil entries when writeRatio is 0).
func runLevel(client *http.Client, addr string, ks []kind, mix []int,
	newPick func(rng *rand.Rand) func(n int) int, concurrency int,
	duration time.Duration, qps float64, seed int64, writeRatio float64) ([]sample, time.Duration, []*writer) {

	perWorker := time.Duration(0)
	if qps > 0 {
		perWorker = time.Duration(float64(concurrency) / qps * float64(time.Second))
	}
	results := make([][]sample, concurrency)
	writers := make([]*writer, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	stopAt := start.Add(duration)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			pick := newPick(rng)
			if writeRatio > 0 {
				writers[w] = newWriter(client, addr, w, seed)
			}
			next := start
			for {
				now := time.Now()
				if now.After(stopAt) {
					return
				}
				if perWorker > 0 {
					if d := next.Sub(now); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(perWorker)
				}
				if writeRatio > 0 && rng.Float64() < writeRatio {
					t0 := time.Now()
					status := writers[w].do()
					results[w] = append(results[w], sample{
						kind:   int8(len(ks)), // the synthetic "ingest" kind
						status: int16(status),
						dur:    time.Since(t0),
					})
					continue
				}
				kd := &ks[mix[rng.Intn(len(mix))]]
				body := kd.bodies[pick(len(kd.bodies))]
				t0 := time.Now()
				resp, err := client.Post(addr+kd.path, "application/json", bytes.NewReader(body))
				status := 0
				cache := cacheNone
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					status = resp.StatusCode
					cache = parseCacheHeader(resp.Header.Get("X-Geosir-Cache"))
				}
				results[w] = append(results[w], sample{
					kind:   int8(indexOf(ks, kd.name)),
					status: int16(status),
					cache:  cache,
					dur:    time.Since(t0),
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []sample
	for _, r := range results {
		all = append(all, r...)
	}
	return all, elapsed, writers
}

func run(addr string, duration time.Duration, concSpec string, qps float64, k int,
	execPolicy, mixSpec, dist string, zipfS float64, seed int64, label, out string, wait time.Duration,
	smoke bool, expShards int, expLoadMode string, writeRatio float64, ingestSmoke bool) error {

	switch execPolicy {
	case "", "auto", "fanout", "sequential":
	default:
		return fmt.Errorf("unknown -exec %q (want auto, fanout or sequential)", execPolicy)
	}
	levels, err := parseLevels(concSpec)
	if err != nil {
		return err
	}
	maxConc := 1
	for _, c := range levels {
		if c > maxConc {
			maxConc = c
		}
	}

	addr = strings.TrimRight(addr, "/")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        maxConc * 2,
			MaxIdleConnsPerHost: maxConc * 2,
		},
	}
	ks := buildKinds(seed, k, execPolicy)
	if err := waitReady(client, addr, wait); err != nil {
		return err
	}
	if ingestSmoke {
		return runIngestSmoke(client, addr)
	}
	if smoke {
		return runSmoke(client, addr, ks, expShards, expLoadMode)
	}
	if writeRatio < 0 || writeRatio >= 1 {
		return fmt.Errorf("-write-ratio must be in [0, 1), got %v", writeRatio)
	}
	mix, err := parseMix(mixSpec, ks)
	if err != nil {
		return err
	}
	maxBodies := 0
	for i := range ks {
		if len(ks[i].bodies) > maxBodies {
			maxBodies = len(ks[i].bodies)
		}
	}
	newPick, err := variantPicker(dist, zipfS, maxBodies)
	if err != nil {
		return err
	}

	var all []sample
	var sweep []SweepLevel
	var totalElapsed time.Duration
	var inserts, deletes int
	for _, conc := range levels {
		samples, elapsed, writers := runLevel(client, addr, ks, mix, newPick, conc, duration, qps, seed, writeRatio)
		if len(samples) == 0 {
			return fmt.Errorf("no requests completed against %s at concurrency %d", addr, conc)
		}
		sum := summarize(samples, func(sample) bool { return true })
		sweep = append(sweep, SweepLevel{
			Concurrency: conc,
			DurationS:   elapsed.Seconds(),
			Requests:    sum.Requests,
			Errors:      sum.Errors,
			AchievedQPS: float64(sum.Requests-sum.Errors) / elapsed.Seconds(),
			MeanMs:      sum.MeanMs,
			P50Ms:       sum.P50Ms,
			P99Ms:       sum.P99Ms,
		})
		all = append(all, samples...)
		totalElapsed += elapsed
		for _, wr := range writers {
			if wr != nil {
				inserts += wr.inserts
				deletes += wr.deletes
			}
		}
	}

	bench := BenchOut{
		Label:     label,
		Target:    addr,
		DurationS: totalElapsed.Seconds(),
		TargetQPS: qps,
		Mix:       mixSpec,
		Dist:      dist,
		Exec:      execPolicy,
		Sweep:     sweep,
		Requests:  len(all),
		Overall:   summarize(all, func(sample) bool { return true }),
		ByKind:    map[string]KindSummary{},
		Status:    map[string]int{},
	}
	if len(levels) == 1 {
		bench.Concurrency = levels[0]
	}
	if dist == "zipf" {
		bench.ZipfS = zipfS
	}
	bench.Errors = bench.Overall.Errors
	okCount := bench.Requests - bench.Errors
	bench.AchievedQPS = float64(okCount) / totalElapsed.Seconds()
	for i, kd := range ks {
		i := int8(i)
		bench.ByKind[kd.name] = summarize(all, func(s sample) bool { return s.kind == i })
	}
	if writeRatio > 0 {
		bench.WriteRatio = writeRatio
		wi := int8(len(ks))
		bench.ByKind[ingestKindName] = summarize(all, func(s sample) bool { return s.kind == wi })
		bench.Inserts = inserts
		bench.Deletes = deletes
	}
	for _, s := range all {
		bench.Status[strconv.Itoa(int(s.status))]++
		switch s.cache {
		case cacheHit:
			bench.CacheHits++
		case cacheMiss:
			bench.CacheMisses++
		case cacheCoalesced:
			bench.CacheCoalesced++
		}
	}
	if n := bench.CacheHits + bench.CacheMisses + bench.CacheCoalesced; n > 0 {
		bench.CacheHitRate = float64(bench.CacheHits) / float64(n)
	}

	execLabel := execPolicy
	if execLabel == "" {
		execLabel = "default"
	}
	fmt.Printf("target        %s\n", bench.Target)
	fmt.Printf("duration      %.2fs   concurrency %s   exec %s   mix %s   dist %s\n",
		bench.DurationS, concSpec, execLabel, mixSpec, dist)
	fmt.Printf("requests      %d (%d errors)\n", bench.Requests, bench.Errors)
	fmt.Printf("throughput    %.1f qps\n", bench.AchievedQPS)
	fmt.Printf("latency  p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms  max %.2fms\n",
		bench.Overall.P50Ms, bench.Overall.P95Ms, bench.Overall.P99Ms, bench.Overall.MeanMs, bench.Overall.MaxMs)
	if len(levels) > 1 {
		for _, lv := range sweep {
			fmt.Printf("  c=%-4d %8.1f qps  p50 %.2fms  p99 %.2fms  (%d reqs, %d errors)\n",
				lv.Concurrency, lv.AchievedQPS, lv.P50Ms, lv.P99Ms, lv.Requests, lv.Errors)
		}
	}
	if bench.CacheHits+bench.CacheMisses+bench.CacheCoalesced > 0 {
		fmt.Printf("cache         hits %d  misses %d  coalesced %d  hit-rate %.3f\n",
			bench.CacheHits, bench.CacheMisses, bench.CacheCoalesced, bench.CacheHitRate)
	}
	if writeRatio > 0 {
		fmt.Printf("writes        ratio %.2f  inserts %d  deletes %d\n",
			bench.WriteRatio, bench.Inserts, bench.Deletes)
	}
	names := make([]string, 0, len(bench.ByKind))
	for name := range bench.ByKind {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ksum := bench.ByKind[name]
		if ksum.Requests == 0 {
			continue
		}
		fmt.Printf("  %-12s %6d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			name, ksum.Requests, ksum.P50Ms, ksum.P95Ms, ksum.P99Ms)
	}
	if bench.Errors > 0 {
		fmt.Printf("status        %v\n", bench.Status)
	}

	if out != "" {
		blob, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func indexOf(ks []kind, name string) int {
	for i := range ks {
		if ks[i].name == name {
			return i
		}
	}
	return -1
}
