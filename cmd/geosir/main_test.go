package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestParseShape(t *testing.T) {
	sh, err := parseShape("0,0 1,0 1,1 0,1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Closed || sh.NumVertices() != 4 {
		t.Errorf("shape = %+v", sh)
	}
	open, err := parseShape("0,0 2,3", false)
	if err != nil {
		t.Fatal(err)
	}
	if open.Closed || open.NumVertices() != 2 {
		t.Errorf("polyline = %+v", open)
	}
	bad := []string{
		"",                // no vertices
		"0,0",             // single vertex
		"0,0 1",           // malformed token
		"0,0 x,1",         // bad number
		"0,0 1,y",         // bad number
		"0,0 2,2 2,0 0,2", // self-intersecting when closed
	}
	for _, src := range bad {
		if _, err := parseShape(src, true); err == nil {
			t.Errorf("parseShape(%q) should fail", src)
		}
	}
}

func TestParseBindings(t *testing.T) {
	b, err := parseBindings("q=0,0 1,0 1,1; p~=0,0 5,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("bindings = %v", b)
	}
	if !b["q"].Closed || b["q"].NumVertices() != 3 {
		t.Errorf("q = %+v", b["q"])
	}
	if b["p"].Closed || b["p"].NumVertices() != 2 {
		t.Errorf("p should be an open polyline: %+v", b["p"])
	}
	if got, err := parseBindings("  "); err != nil || len(got) != 0 {
		t.Errorf("empty bindings: %v %v", got, err)
	}
	if _, err := parseBindings("noequals"); err == nil {
		t.Error("missing '=' should fail")
	}
	if _, err := parseBindings("q=0,0"); err == nil {
		t.Error("degenerate bound shape should fail")
	}
}

func TestLoadBase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shapes.txt")
	content := `# comment line
0 closed 0,0 4,0 4,4 0,4
0 open 5,5 9,9
1 closed 0,0 3,0 0,3

2 closed 10,10 14,10 14,14 10,14
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := geosir.New(geosir.DefaultOptions())
	if err := loadBase(eng, path); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	if eng.NumImages() != 3 || eng.NumShapes() != 4 {
		t.Errorf("loaded %d images / %d shapes", eng.NumImages(), eng.NumShapes())
	}
	// Retrieval works on the loaded base.
	q, _ := parseShape("0,0 4,0 4,4 0,4", true)
	ms, _, err := eng.FindSimilar(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ImageID != 0 {
		t.Errorf("query = %v", ms)
	}
}

func TestLoadBaseErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"short-line": "0 closed\n",
		"bad-id":     "x closed 0,0 1,0 1,1\n",
		"bad-mode":   "0 sideways 0,0 1,0 1,1\n",
		"bad-shape":  "0 closed 0,0 1,0\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		eng := geosir.New(geosir.DefaultOptions())
		if err := loadBase(eng, path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	eng := geosir.New(geosir.DefaultOptions())
	if err := loadBase(eng, filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunDemoPath(t *testing.T) {
	// End-to-end: demo base, query by stored shape id.
	if err := run("", 15, 3, "", false, 2, 2, "", "", false, 1, "off"); err != nil {
		t.Fatalf("demo run: %v", err)
	}
	// Same demo over a sharded engine.
	if err := run("", 15, 3, "", false, 2, 2, "", "", false, 3, "off"); err != nil {
		t.Fatalf("sharded demo run: %v", err)
	}
	// Stats mode, both engine kinds.
	if err := run("", 10, 3, "", false, -1, 1, "", "", true, 1, "off"); err != nil {
		t.Fatalf("stats run: %v", err)
	}
	if err := run("", 10, 3, "", false, -1, 1, "", "", true, 2, "off"); err != nil {
		t.Fatalf("sharded stats run: %v", err)
	}
	// Topological query.
	if err := run("", 10, 3, "", false, -1, 1,
		"similar(q)", "q=0,0 1,0 1,1 0,1", false, 1, "off"); err != nil {
		t.Fatalf("topo run: %v", err)
	}
	if err := run("", 10, 3, "", false, -1, 1,
		"similar(q)", "q=0,0 1,0 1,1 0,1", false, 2, "off"); err != nil {
		t.Fatalf("sharded topo run: %v", err)
	}
	// ANN candidate tier, both modes, both engine kinds.
	if err := run("", 15, 3, "", false, 2, 2, "", "", false, 1, "verify"); err != nil {
		t.Fatalf("ann verify run: %v", err)
	}
	if err := run("", 15, 3, "", false, 2, 2, "", "", false, 2, "approx"); err != nil {
		t.Fatalf("sharded ann approx run: %v", err)
	}
	if err := run("", 15, 3, "", false, 2, 2, "", "", false, 1, "bogus"); err == nil {
		t.Error("bad ann mode should fail")
	}
	// Error cases.
	if err := run("", 0, 1, "", false, -1, 1, "", "", false, 1, "off"); err == nil {
		t.Error("no base source should fail")
	}
	if err := run("", 5, 1, "", false, 10000, 1, "", "", false, 1, "off"); err == nil {
		t.Error("out-of-range query shape should fail")
	}
	if err := run("", 5, 1, "", false, -1, 1, "", "", false, 1, "off"); err == nil {
		t.Error("no query should fail")
	}
}

func TestRunSnapshotSharded(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "snapdir")
	if err := runSnapshot("", 12, 3, 3, out); err != nil {
		t.Fatal(err)
	}
	sv, rec, err := geosir.LoadAny(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil && !rec.Complete() {
		t.Fatalf("fresh sharded snapshot incomplete: %+v", rec)
	}
	se, ok := sv.(*geosir.ShardedEngine)
	if !ok {
		t.Fatalf("LoadAny(dir) = %T, want *ShardedEngine", sv)
	}
	if se.NumShards() != 3 || se.NumImages() == 0 {
		t.Fatalf("loaded %d shards / %d images", se.NumShards(), se.NumImages())
	}

	// Single-file snapshots still work through the same path.
	file := filepath.Join(dir, "snap.gsir2")
	if err := runSnapshot("", 12, 3, 1, file); err != nil {
		t.Fatal(err)
	}
	if sv, _, err := geosir.LoadAny(file); err != nil {
		t.Fatal(err)
	} else if _, ok := sv.(*geosir.Engine); !ok {
		t.Fatalf("LoadAny(file) = %T, want *Engine", sv)
	}
}

func TestRunShardBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runShardBench("", 10, 3, "1,2", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep shardBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench output not JSON: %v\n%s", err, data)
	}
	if rep.Cores < 1 || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, row := range rep.Results {
		if row.FreezeMillis <= 0 || row.Shapes == 0 {
			t.Fatalf("row = %+v", row)
		}
	}
	if rep.Results[0].Shards != 1 || rep.Results[0].FreezeSpeedup != 1 {
		t.Fatalf("single-shard baseline row = %+v", rep.Results[0])
	}
	// Bad inputs.
	if err := runShardBench("", 0, 1, "1,2", out); err == nil {
		t.Error("no demo base should fail")
	}
	if err := runShardBench("x.txt", 10, 1, "1,2", out); err == nil {
		t.Error("-base with -shard-bench should fail")
	}
	if err := runShardBench("", 10, 1, "1,zero", out); err == nil {
		t.Error("bad shard count should fail")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "dumped.txt")
	if err := runDump("", 8, 3, out); err != nil {
		t.Fatal(err)
	}
	// The dump re-loads into an identical base.
	eng := geosir.New(geosir.DefaultOptions())
	if err := loadBase(eng, out); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	if eng.NumShapes() == 0 {
		t.Fatal("dump round trip lost all shapes")
	}
	// Re-dump and compare shape counts.
	out2 := filepath.Join(dir, "dumped2.txt")
	if err := runDump(out, 0, 3, out2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty dumps")
	}
	if err := runDump("", 0, 1, filepath.Join(dir, "x")); err == nil {
		t.Error("no source should fail")
	}
}
