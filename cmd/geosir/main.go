// Command geosir is the GeoSIR command-line interface: it loads an image
// base from a shape file (or generates a synthetic demo base), then
// answers similarity and topological queries.
//
// Shape file format — one shape per line:
//
//	<image-id> <closed|open> x1,y1 x2,y2 x3,y3 ...
//
// Lines starting with '#' are comments.
//
// Usage:
//
//	geosir -base shapes.txt -query "0,0 1,0 1,1 0,1" -k 5
//	geosir -demo 200 -query-shape 3            # query with a stored shape
//	geosir -demo 200 -shards 4 -query-shape 3  # same, over a sharded engine
//	geosir -base shapes.txt -topo "similar(q)" -bind "q=0,0 1,0 1,1 0,1"
//	geosir -base shapes.txt -stats
//	geosir -demo 500 -shards 4 -snapshot-out snapdir   # sharded snapshot directory
//	geosir -demo 500 -shard-bench 1,2,4 -bench-out BENCH_shard.json
//	geosir -load-bench 100,400 -bench-out BENCH_load.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/synth"
)

func main() {
	var (
		basePath   = flag.String("base", "", "shape file to load")
		demo       = flag.Int("demo", 0, "generate a synthetic demo base with N images instead of loading")
		seed       = flag.Int64("seed", 1, "seed for -demo")
		queryStr   = flag.String("query", "", "query shape as \"x1,y1 x2,y2 ...\" (closed)")
		queryOpen  = flag.Bool("open", false, "treat -query as an open polyline")
		queryShape = flag.Int("query-shape", -1, "query with stored shape id (use with -demo)")
		k          = flag.Int("k", 3, "number of matches")
		topo       = flag.String("topo", "", "topological query, e.g. \"similar(q) AND NOT overlap(a,b,any)\"")
		binds      = flag.String("bind", "", "semicolon-separated shape bindings: \"q=x1,y1 x2,y2 ...;a=...\"")
		stats      = flag.Bool("stats", false, "print base statistics and exit")
		dump       = flag.String("dump", "", "write the loaded/demo base to a shape file and exit")
		snapOut    = flag.String("snapshot-out", "", "freeze the loaded/demo base and write a snapshot for geosird, then exit (with -shards > 1: a snapshot directory)")
		shards     = flag.Int("shards", 1, "partition the base across N shards")
		shardBench = flag.String("shard-bench", "", "comma-separated shard counts to benchmark Freeze + queries over, e.g. \"1,2,4\"")
		loadBench  = flag.String("load-bench", "", "comma-separated demo sizes to benchmark snapshot decode vs mmap open over, e.g. \"100,400\"")
		benchOut   = flag.String("bench-out", "", "write -shard-bench/-load-bench results as JSON to this file (default stdout)")
		annMode    = flag.String("ann", "off", "ANN candidate tier: off, verify (reorder only, exact results), approx (sublinear)")
	)
	flag.Parse()

	if *shardBench != "" {
		if err := runShardBench(*basePath, *demo, *seed, *shardBench, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if *loadBench != "" {
		if err := runLoadBench(*basePath, *loadBench, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if *dump != "" {
		if err := runDump(*basePath, *demo, *seed, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if *snapOut != "" {
		if err := runSnapshot(*basePath, *demo, *seed, *shards, *snapOut); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*basePath, *demo, *seed, *queryStr, *queryOpen, *queryShape, *k, *topo, *binds, *stats, *shards, *annMode); err != nil {
		fmt.Fprintln(os.Stderr, "geosir:", err)
		os.Exit(1)
	}
}

// imageAdder is the mutation surface shared by Engine and ShardedEngine;
// the base builders below are agnostic to which one they fill.
type imageAdder interface {
	AddImage(imageID int, shapes []geosir.Shape) error
}

// fillBase populates any engine kind from -demo or -base.
func fillBase(adder imageAdder, basePath string, demo int, seed int64) error {
	switch {
	case demo > 0:
		spec := synth.PaperSpec(float64(demo)/10000, seed)
		spec.Images = demo
		for _, img := range synth.GenerateBase(spec) {
			valid := img.Shapes[:0]
			for _, s := range img.Shapes {
				if s.Validate() == nil {
					valid = append(valid, s)
				}
			}
			if len(valid) == 0 {
				continue
			}
			if err := adder.AddImage(img.ID, valid); err != nil {
				return err
			}
		}
		return nil
	case basePath != "":
		return loadBase(adder, basePath)
	}
	return fmt.Errorf("need -base FILE or -demo N")
}

// cliEngine is the surface run() needs from either engine kind.
type cliEngine interface {
	geosir.Searcher
	imageAdder
	Freeze() error
	NumImages() int
	NumShapes() int
	NumEntries() int
	Query(src string, binds map[string]geosir.Shape) ([]int, string, error)
}

func newEngine(shards int) cliEngine {
	if shards > 1 {
		return geosir.NewSharded(geosir.DefaultOptions(), shards)
	}
	return geosir.New(geosir.DefaultOptions())
}

// storedPoly fetches a stored shape's polygon by global shape id from
// either engine kind.
func storedPoly(eng cliEngine, id int) (geosir.Shape, error) {
	if id < 0 || id >= eng.NumShapes() {
		return geosir.Shape{}, fmt.Errorf("shape id %d out of range [0,%d)", id, eng.NumShapes())
	}
	switch e := eng.(type) {
	case *geosir.Engine:
		return e.Base().Shape(id).Poly, nil
	case *geosir.ShardedEngine:
		shard, local, ok := e.IDMap().Locate(id)
		if !ok {
			return geosir.Shape{}, fmt.Errorf("shape id %d not present (dropped shard?)", id)
		}
		return e.Shard(shard).Base().Shape(int(local)).Poly, nil
	}
	return geosir.Shape{}, fmt.Errorf("unknown engine kind %T", eng)
}

func printHashStats(eng cliEngine) {
	switch e := eng.(type) {
	case *geosir.Engine:
		mean, maxB := e.HashTable().BucketStats()
		fmt.Printf("hash table: %d shapes, mean bucket %.2f, max bucket %d\n",
			e.HashTable().Len(), mean, maxB)
	case *geosir.ShardedEngine:
		for i := 0; i < e.NumShards(); i++ {
			sh := e.Shard(i)
			mean, maxB := sh.HashTable().BucketStats()
			fmt.Printf("shard %d hash table: %d shapes, mean bucket %.2f, max bucket %d\n",
				i, sh.HashTable().Len(), mean, maxB)
		}
	}
}

func run(basePath string, demo int, seed int64, queryStr string, queryOpen bool,
	queryShape, k int, topo, binds string, stats bool, shards int, annMode string) error {

	ann, err := geosir.ParseAnnMode(annMode)
	if err != nil {
		return err
	}
	eng := newEngine(shards)
	if err := fillBase(eng, basePath, demo, seed); err != nil {
		return err
	}
	if err := eng.Freeze(); err != nil {
		return err
	}
	fmt.Printf("base: %d images, %d shapes, %d normalized copies\n",
		eng.NumImages(), eng.NumShapes(), eng.NumEntries())

	if stats {
		printHashStats(eng)
		return nil
	}

	if topo != "" {
		bmap, err := parseBindings(binds)
		if err != nil {
			return err
		}
		ids, plan, err := eng.Query(topo, bmap)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\n", plan)
		fmt.Printf("%d matching images: %v\n", len(ids), ids)
		return nil
	}

	var q geosir.Shape
	switch {
	case queryStr != "":
		var err error
		q, err = parseShape(queryStr, !queryOpen)
		if err != nil {
			return err
		}
	case queryShape >= 0:
		src, err := storedPoly(eng, queryShape)
		if err != nil {
			return err
		}
		// Perturb slightly so the query is a sketch, not the stored copy.
		rng := rand.New(rand.NewSource(seed + 7))
		q = synth.Distort(rng, src, 0.01)
		if q.Validate() != nil {
			q = src
		}
	default:
		return fmt.Errorf("need -query, -query-shape, -topo, or -stats")
	}

	resp, err := eng.Search(context.Background(), geosir.SearchRequest{Query: q, K: k, Ann: ann})
	if err != nil {
		return err
	}
	mode := "exact (ε-envelope fattening)"
	switch {
	case resp.Stats.UsedANN && !resp.Stats.UsedHashing && resp.Stats.Iterations == 0:
		mode = "approximate (ANN candidate tier)"
	case resp.Stats.UsedHashing:
		mode = "approximate (geometric hashing)"
	}
	fmt.Printf("retrieval: %s — %d iterations, ε=%.4g, %d candidates\n",
		mode, resp.Stats.Iterations, resp.Stats.FinalEpsilon, resp.Stats.Candidates)
	if resp.Stats.UsedANN {
		fmt.Printf("ann tier: %d bucket probes, %d candidates\n",
			resp.Stats.ANNProbes, resp.Stats.ANNCandidates)
	}
	for i, m := range resp.Matches {
		fmt.Printf("  #%d shape %d (image %d): distance %.5f\n",
			i+1, m.ShapeID, m.ImageID, m.Distance)
	}
	return nil
}

// runDump materializes a base (demo or loaded) into the shape file
// format, so a -demo base can be edited and re-used with -base.
func runDump(basePath string, demo int, seed int64, out string) error {
	eng := geosir.New(geosir.DefaultOptions())
	if err := fillBase(eng, basePath, demo, seed); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# GeoSIR shape base: %d shapes\n", eng.Base().NumShapes())
	for _, s := range eng.Base().Shapes() {
		mode := "open"
		if s.Poly.Closed {
			mode = "closed"
		}
		fmt.Fprintf(w, "%d %s", s.Image, mode)
		for _, p := range s.Poly.Pts {
			fmt.Fprintf(w, " %g,%g", p.X, p.Y)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d shapes to %s\n", eng.Base().NumShapes(), out)
	return nil
}

// runSnapshot materializes a base (demo or loaded), freezes it, and
// writes a GSIR snapshot ready to serve with geosird -snapshot. The base
// is frozen, so the snapshot is GSIR3 — reloads assemble (or, with
// geosird -load-mode mmap, map) the sections instead of rebuilding. With
// shards > 1 the snapshot is a directory of per-shard files plus a
// manifest.
func runSnapshot(basePath string, demo int, seed int64, shards int, out string) error {
	eng := newEngine(shards)
	if err := fillBase(eng, basePath, demo, seed); err != nil {
		return err
	}
	if err := eng.Freeze(); err != nil {
		return err
	}
	switch e := eng.(type) {
	case *geosir.ShardedEngine:
		if err := e.SaveDir(out); err != nil {
			return err
		}
		fmt.Printf("wrote sharded snapshot %s (%d shards, %d images, %d shapes, %d entries)\n",
			out, e.NumShards(), e.NumImages(), e.NumShapes(), e.NumEntries())
	case *geosir.Engine:
		if err := e.SaveFileAs(out, geosir.FormatGSIR3); err != nil {
			return err
		}
		fmt.Printf("wrote snapshot %s (%d images, %d shapes, %d entries)\n",
			out, e.NumImages(), e.NumShapes(), e.NumEntries())
	}
	return nil
}

// shardBenchRow is one (gomaxprocs, shard count) cell's measurements in
// BENCH_shard.json.
type shardBenchRow struct {
	Shards        int     `json:"shards"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	FreezeMillis  float64 `json:"freeze_ms"`
	FreezeSpeedup float64 `json:"freeze_speedup_vs_single"`
	QueryMicros   float64 `json:"query_us_mean"`
	Images        int     `json:"images"`
	Shapes        int     `json:"shapes"`
	// Concurrency holds closed-loop rows at increasing caller counts
	// against this same frozen engine, exercising the scheduler's
	// load-adaptive fan-out (ExecAuto narrows per-query width as the
	// in-flight gauge rises).
	Concurrency []shardBenchConcRow `json:"concurrency_sweep,omitempty"`
}

// shardBenchConcRow is one concurrency level of the closed-loop query
// sweep: Concurrency goroutines each loop exact searches for a fixed
// window.
type shardBenchConcRow struct {
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
}

// shardBenchConcLevels are the caller counts each engine is measured
// under; shardBenchConcWindow is the per-level measurement window. The
// window must fit several of the slowest demo-base queries (~600ms on
// the bench box at 8 shards) or the c=1 row degenerates to a single
// sample.
var shardBenchConcLevels = []int{1, 8, 64}

const shardBenchConcWindow = 2 * time.Second

// measureConcLevel runs the closed loop at one concurrency level and
// summarizes it.
func measureConcLevel(eng cliEngine, queries []geosir.Shape, conc int) (shardBenchConcRow, error) {
	lats := make([][]time.Duration, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	stopAt := start.Add(shardBenchConcWindow)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(stopAt); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				if _, err := eng.Search(context.Background(),
					geosir.SearchRequest{Query: q, K: 5, Mode: geosir.ModeExact}); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return shardBenchConcRow{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return shardBenchConcRow{}, fmt.Errorf("concurrency %d: no queries completed in %v", conc, shardBenchConcWindow)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	return shardBenchConcRow{
		Concurrency: conc,
		QPS:         float64(len(all)) / elapsed.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
	}, nil
}

type shardBenchReport struct {
	Demo    int             `json:"demo_images"`
	Seed    int64           `json:"seed"`
	Queries int             `json:"queries"`
	Cores   int             `json:"cores"`
	Results []shardBenchRow `json:"results"`
}

// runShardBench measures Freeze wall time and mean exact-query latency
// for each requested shard count over the same synthetic base, and
// emits the result as JSON (BENCH_shard.json in the Makefile target).
// Freeze parallelizes per shard, so speedup tracks available cores; the
// whole sweep runs twice, at GOMAXPROCS=1 and GOMAXPROCS=NumCPU, so the
// report separates fan-out coordination overhead (visible when shards
// outnumber usable cores) from genuine parallel speedup. Each row
// records which setting produced it, and freeze speedups are relative
// to the single-shard run at the same GOMAXPROCS.
func runShardBench(basePath string, demo int, seed int64, countsStr, out string) error {
	if basePath != "" {
		return fmt.Errorf("-shard-bench needs -demo N (query workload is synthesized)")
	}
	if demo <= 0 {
		return fmt.Errorf("need -demo N with -shard-bench")
	}
	var counts []int
	for _, tok := range strings.Split(countsStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("bad shard count %q in -shard-bench", tok)
		}
		counts = append(counts, n)
	}

	// Query workload: distorted copies of stored shapes, independent of
	// how the base is partitioned.
	spec := synth.PaperSpec(float64(demo)/10000, seed)
	spec.Images = demo
	images := synth.GenerateBase(spec)
	queries := synth.Queries(rand.New(rand.NewSource(seed+7)), images, 8, 0.01)

	report := shardBenchReport{
		Demo:    demo,
		Seed:    seed,
		Queries: len(queries),
		Cores:   runtime.NumCPU(),
	}
	procSweep := []int{1, runtime.NumCPU()}
	if procSweep[1] == 1 {
		procSweep = procSweep[:1]
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, gp := range procSweep {
		runtime.GOMAXPROCS(gp)
		var singleFreeze time.Duration
		for _, n := range counts {
			eng := newEngine(n)
			if err := fillBase(eng, "", demo, seed); err != nil {
				return err
			}
			t0 := time.Now()
			if err := eng.Freeze(); err != nil {
				return err
			}
			freeze := time.Since(t0)
			if n == 1 {
				singleFreeze = freeze
			}

			t0 = time.Now()
			for _, q := range queries {
				if _, err := eng.Search(context.Background(),
					geosir.SearchRequest{Query: q, K: 5, Mode: geosir.ModeExact}); err != nil {
					return err
				}
			}
			perQuery := time.Since(t0) / time.Duration(len(queries))

			row := shardBenchRow{
				Shards:       n,
				GoMaxProcs:   gp,
				FreezeMillis: float64(freeze.Microseconds()) / 1e3,
				QueryMicros:  float64(perQuery.Nanoseconds()) / 1e3,
				Images:       eng.NumImages(),
				Shapes:       eng.NumShapes(),
			}
			if singleFreeze > 0 {
				row.FreezeSpeedup = float64(singleFreeze) / float64(freeze)
			}
			for _, conc := range shardBenchConcLevels {
				cr, err := measureConcLevel(eng, queries, conc)
				if err != nil {
					return err
				}
				row.Concurrency = append(row.Concurrency, cr)
			}
			report.Results = append(report.Results, row)
			fmt.Fprintf(os.Stderr, "gomaxprocs=%d shards=%d freeze=%v query=%v speedup=%.2fx\n",
				gp, n, freeze.Round(time.Microsecond), perQuery.Round(time.Microsecond), row.FreezeSpeedup)
			for _, cr := range row.Concurrency {
				fmt.Fprintf(os.Stderr, "  c=%-3d %9.1f qps  p50 %.1fus  p99 %.1fus\n",
					cr.Concurrency, cr.QPS, cr.P50Micros, cr.P99Micros)
			}
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// loadBase reads the shape file format described in the package comment.
func loadBase(eng imageAdder, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	images := make(map[int][]geosir.Shape)
	var order []int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return fmt.Errorf("%s:%d: want \"id closed|open x,y x,y ...\"", path, lineNo)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("%s:%d: bad image id %q", path, lineNo, fields[0])
		}
		closed := fields[1] == "closed"
		if !closed && fields[1] != "open" {
			return fmt.Errorf("%s:%d: expected closed|open, got %q", path, lineNo, fields[1])
		}
		shape, err := parseShape(strings.Join(fields[2:], " "), closed)
		if err != nil {
			return fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if _, seen := images[id]; !seen {
			order = append(order, id)
		}
		images[id] = append(images[id], shape)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, id := range order {
		if err := eng.AddImage(id, images[id]); err != nil {
			return fmt.Errorf("image %d: %w", id, err)
		}
	}
	return nil
}

// parseShape parses "x1,y1 x2,y2 ..." into a Shape.
func parseShape(s string, closed bool) (geosir.Shape, error) {
	var pts []geosir.Point
	for _, tok := range strings.Fields(s) {
		xy := strings.Split(tok, ",")
		if len(xy) != 2 {
			return geosir.Shape{}, fmt.Errorf("bad vertex %q, want x,y", tok)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return geosir.Shape{}, fmt.Errorf("bad x in %q: %w", tok, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return geosir.Shape{}, fmt.Errorf("bad y in %q: %w", tok, err)
		}
		pts = append(pts, geosir.Pt(x, y))
	}
	sh := geosir.Shape{Pts: pts, Closed: closed}
	if err := sh.Validate(); err != nil {
		return geosir.Shape{}, err
	}
	return sh, nil
}

// parseBindings parses "name=x,y x,y ...;name2=..." into shape bindings.
// Shapes in bindings are closed polygons; suffix the name with ~ for an
// open polyline.
func parseBindings(s string) (map[string]geosir.Shape, error) {
	out := make(map[string]geosir.Shape)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("binding %q missing '='", part)
		}
		name := strings.TrimSpace(part[:eq])
		closed := true
		if strings.HasSuffix(name, "~") {
			name = strings.TrimSuffix(name, "~")
			closed = false
		}
		shape, err := parseShape(part[eq+1:], closed)
		if err != nil {
			return nil, fmt.Errorf("binding %q: %w", name, err)
		}
		out[name] = shape
	}
	return out, nil
}
