// Command geosir is the GeoSIR command-line interface: it loads an image
// base from a shape file (or generates a synthetic demo base), then
// answers similarity and topological queries.
//
// Shape file format — one shape per line:
//
//	<image-id> <closed|open> x1,y1 x2,y2 x3,y3 ...
//
// Lines starting with '#' are comments.
//
// Usage:
//
//	geosir -base shapes.txt -query "0,0 1,0 1,1 0,1" -k 5
//	geosir -demo 200 -query-shape 3            # query with a stored shape
//	geosir -base shapes.txt -topo "similar(q)" -bind "q=0,0 1,0 1,1 0,1"
//	geosir -base shapes.txt -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/synth"
)

func main() {
	var (
		basePath   = flag.String("base", "", "shape file to load")
		demo       = flag.Int("demo", 0, "generate a synthetic demo base with N images instead of loading")
		seed       = flag.Int64("seed", 1, "seed for -demo")
		queryStr   = flag.String("query", "", "query shape as \"x1,y1 x2,y2 ...\" (closed)")
		queryOpen  = flag.Bool("open", false, "treat -query as an open polyline")
		queryShape = flag.Int("query-shape", -1, "query with stored shape id (use with -demo)")
		k          = flag.Int("k", 3, "number of matches")
		topo       = flag.String("topo", "", "topological query, e.g. \"similar(q) AND NOT overlap(a,b,any)\"")
		binds      = flag.String("bind", "", "semicolon-separated shape bindings: \"q=x1,y1 x2,y2 ...;a=...\"")
		stats      = flag.Bool("stats", false, "print base statistics and exit")
		dump       = flag.String("dump", "", "write the loaded/demo base to a shape file and exit")
		snapOut    = flag.String("snapshot-out", "", "freeze the loaded/demo base and write a snapshot for geosird, then exit")
	)
	flag.Parse()

	if *dump != "" {
		if err := runDump(*basePath, *demo, *seed, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if *snapOut != "" {
		if err := runSnapshot(*basePath, *demo, *seed, *snapOut); err != nil {
			fmt.Fprintln(os.Stderr, "geosir:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*basePath, *demo, *seed, *queryStr, *queryOpen, *queryShape, *k, *topo, *binds, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "geosir:", err)
		os.Exit(1)
	}
}

func run(basePath string, demo int, seed int64, queryStr string, queryOpen bool,
	queryShape, k int, topo, binds string, stats bool) error {

	eng := geosir.New(geosir.DefaultOptions())
	switch {
	case demo > 0:
		spec := synth.PaperSpec(float64(demo)/10000, seed)
		spec.Images = demo
		for _, img := range synth.GenerateBase(spec) {
			valid := img.Shapes[:0]
			for _, s := range img.Shapes {
				if s.Validate() == nil {
					valid = append(valid, s)
				}
			}
			if len(valid) == 0 {
				continue
			}
			if err := eng.AddImage(img.ID, valid); err != nil {
				return err
			}
		}
	case basePath != "":
		if err := loadBase(eng, basePath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -base FILE or -demo N")
	}
	if err := eng.Freeze(); err != nil {
		return err
	}
	fmt.Printf("base: %d images, %d shapes, %d normalized copies\n",
		eng.NumImages(), eng.NumShapes(), eng.NumEntries())

	if stats {
		mean, maxB := eng.HashTable().BucketStats()
		fmt.Printf("hash table: %d shapes, mean bucket %.2f, max bucket %d\n",
			eng.HashTable().Len(), mean, maxB)
		return nil
	}

	if topo != "" {
		bmap, err := parseBindings(binds)
		if err != nil {
			return err
		}
		ids, plan, err := eng.Query(topo, bmap)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\n", plan)
		fmt.Printf("%d matching images: %v\n", len(ids), ids)
		return nil
	}

	var q geosir.Shape
	switch {
	case queryStr != "":
		var err error
		q, err = parseShape(queryStr, !queryOpen)
		if err != nil {
			return err
		}
	case queryShape >= 0:
		if queryShape >= eng.NumShapes() {
			return fmt.Errorf("shape id %d out of range [0,%d)", queryShape, eng.NumShapes())
		}
		src := eng.Base().Shape(queryShape).Poly
		// Perturb slightly so the query is a sketch, not the stored copy.
		rng := rand.New(rand.NewSource(seed + 7))
		q = synth.Distort(rng, src, 0.01)
		if q.Validate() != nil {
			q = src
		}
	default:
		return fmt.Errorf("need -query, -query-shape, -topo, or -stats")
	}

	ms, st, err := eng.FindSimilar(q, k)
	if err != nil {
		return err
	}
	mode := "exact (ε-envelope fattening)"
	if st.UsedHashing {
		mode = "approximate (geometric hashing)"
	}
	fmt.Printf("retrieval: %s — %d iterations, ε=%.4g, %d candidates\n",
		mode, st.Iterations, st.FinalEpsilon, st.Candidates)
	for i, m := range ms {
		fmt.Printf("  #%d shape %d (image %d): distance %.5f\n",
			i+1, m.ShapeID, m.ImageID, m.Distance)
	}
	return nil
}

// runDump materializes a base (demo or loaded) into the shape file
// format, so a -demo base can be edited and re-used with -base.
func runDump(basePath string, demo int, seed int64, out string) error {
	eng := geosir.New(geosir.DefaultOptions())
	switch {
	case demo > 0:
		spec := synth.PaperSpec(float64(demo)/10000, seed)
		spec.Images = demo
		for _, img := range synth.GenerateBase(spec) {
			valid := img.Shapes[:0]
			for _, s := range img.Shapes {
				if s.Validate() == nil {
					valid = append(valid, s)
				}
			}
			if len(valid) == 0 {
				continue
			}
			if err := eng.AddImage(img.ID, valid); err != nil {
				return err
			}
		}
	case basePath != "":
		if err := loadBase(eng, basePath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -base FILE or -demo N")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# GeoSIR shape base: %d shapes\n", eng.Base().NumShapes())
	for _, s := range eng.Base().Shapes() {
		mode := "open"
		if s.Poly.Closed {
			mode = "closed"
		}
		fmt.Fprintf(w, "%d %s", s.Image, mode)
		for _, p := range s.Poly.Pts {
			fmt.Fprintf(w, " %g,%g", p.X, p.Y)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d shapes to %s\n", eng.Base().NumShapes(), out)
	return nil
}

// runSnapshot materializes a base (demo or loaded), freezes it, and
// writes a GSIR snapshot ready to serve with geosird -snapshot.
func runSnapshot(basePath string, demo int, seed int64, out string) error {
	eng := geosir.New(geosir.DefaultOptions())
	switch {
	case demo > 0:
		spec := synth.PaperSpec(float64(demo)/10000, seed)
		spec.Images = demo
		for _, img := range synth.GenerateBase(spec) {
			valid := img.Shapes[:0]
			for _, s := range img.Shapes {
				if s.Validate() == nil {
					valid = append(valid, s)
				}
			}
			if len(valid) == 0 {
				continue
			}
			if err := eng.AddImage(img.ID, valid); err != nil {
				return err
			}
		}
	case basePath != "":
		if err := loadBase(eng, basePath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -base FILE or -demo N")
	}
	if err := eng.Freeze(); err != nil {
		return err
	}
	if err := eng.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot %s (%d images, %d shapes, %d entries)\n",
		out, eng.NumImages(), eng.NumShapes(), eng.NumEntries())
	return nil
}

// loadBase reads the shape file format described in the package comment.
func loadBase(eng *geosir.Engine, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	images := make(map[int][]geosir.Shape)
	var order []int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return fmt.Errorf("%s:%d: want \"id closed|open x,y x,y ...\"", path, lineNo)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("%s:%d: bad image id %q", path, lineNo, fields[0])
		}
		closed := fields[1] == "closed"
		if !closed && fields[1] != "open" {
			return fmt.Errorf("%s:%d: expected closed|open, got %q", path, lineNo, fields[1])
		}
		shape, err := parseShape(strings.Join(fields[2:], " "), closed)
		if err != nil {
			return fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if _, seen := images[id]; !seen {
			order = append(order, id)
		}
		images[id] = append(images[id], shape)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, id := range order {
		if err := eng.AddImage(id, images[id]); err != nil {
			return fmt.Errorf("image %d: %w", id, err)
		}
	}
	return nil
}

// parseShape parses "x1,y1 x2,y2 ..." into a Shape.
func parseShape(s string, closed bool) (geosir.Shape, error) {
	var pts []geosir.Point
	for _, tok := range strings.Fields(s) {
		xy := strings.Split(tok, ",")
		if len(xy) != 2 {
			return geosir.Shape{}, fmt.Errorf("bad vertex %q, want x,y", tok)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return geosir.Shape{}, fmt.Errorf("bad x in %q: %w", tok, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return geosir.Shape{}, fmt.Errorf("bad y in %q: %w", tok, err)
		}
		pts = append(pts, geosir.Pt(x, y))
	}
	sh := geosir.Shape{Pts: pts, Closed: closed}
	if err := sh.Validate(); err != nil {
		return geosir.Shape{}, err
	}
	return sh, nil
}

// parseBindings parses "name=x,y x,y ...;name2=..." into shape bindings.
// Shapes in bindings are closed polygons; suffix the name with ~ for an
// open polyline.
func parseBindings(s string) (map[string]geosir.Shape, error) {
	out := make(map[string]geosir.Shape)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("binding %q missing '='", part)
		}
		name := strings.TrimSpace(part[:eq])
		closed := true
		if strings.HasSuffix(name, "~") {
			name = strings.TrimSuffix(name, "~")
			closed = false
		}
		shape, err := parseShape(part[eq+1:], closed)
		if err != nil {
			return nil, fmt.Errorf("binding %q: %w", name, err)
		}
		out[name] = shape
	}
	return out, nil
}
