package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/synth"
)

// loadBenchRow is one demo-size cell of the snapshot open/load sweep in
// BENCH_load.json. The three timing columns are the point of the bench:
// GSIR2 decode rebuilds the heap structures, GSIR3 heap load assembles
// them from sections, and the GSIR3 mmap open maps them in place — the
// last should be roughly flat in base size (O(1) open), which is what
// the sweep across Demo sizes demonstrates.
type loadBenchRow struct {
	Demo    int `json:"demo"`
	Images  int `json:"images"`
	Entries int `json:"entries"`
	// Snapshot sizes on disk.
	Gsir2Bytes int64 `json:"gsir2_bytes"`
	Gsir3Bytes int64 `json:"gsir3_bytes"`
	// Open/load wall times (best of several runs — opens are
	// microsecond-scale and a single sample is all scheduler noise).
	Gsir2LoadMs     float64 `json:"gsir2_load_ms"`
	Gsir3HeapLoadMs float64 `json:"gsir3_heap_load_ms"`
	Gsir3MmapOpenMs float64 `json:"gsir3_mmap_open_ms"`
	// OpenSpeedup is Gsir2LoadMs / Gsir3MmapOpenMs — the headline
	// column benchdiff tracks.
	OpenSpeedup float64 `json:"open_speedup_vs_gsir2"`
	// Memory: bytes mapped by the open vs heap bytes retained by the
	// full decode (the mmap side's resident set is the page cache's
	// business and grows only with the pages queries touch).
	MappedBytes   int64 `json:"mapped_bytes"`
	HeapLoadBytes int64 `json:"heap_load_bytes"`
	// First-pass query latencies right after the open (every page fault
	// and lazy structure is paid here) and a second warm pass for
	// contrast. HeapColdP50Us is the same first pass on the fully
	// decoded engine — the bound mmap cold queries should approach.
	MmapColdP50Us float64 `json:"mmap_cold_p50_us"`
	MmapColdP99Us float64 `json:"mmap_cold_p99_us"`
	MmapWarmP50Us float64 `json:"mmap_warm_p50_us"`
	HeapColdP50Us float64 `json:"heap_cold_p50_us"`
}

type loadBenchReport struct {
	Seed    int64          `json:"seed"`
	Queries int            `json:"queries"`
	Cores   int            `json:"cores"`
	Rows    []loadBenchRow `json:"rows"`
}

// runLoadBench freezes one synthetic base per requested demo size, saves
// it as both GSIR2 and GSIR3, and measures decode vs assemble vs mmap
// open, plus cold-query latency and memory on each side. Every query is
// also cross-checked: the mmap-served engine must return byte-identical
// responses to the heap-loaded one, so the bench doubles as an
// end-to-end equivalence smoke.
func runLoadBench(basePath, sizesStr string, seed int64, out string) error {
	if basePath != "" {
		return fmt.Errorf("-load-bench needs -demo-style synthetic bases (sizes come from the flag)")
	}
	var sizes []int
	for _, tok := range strings.Split(sizesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("bad demo size %q in -load-bench", tok)
		}
		sizes = append(sizes, n)
	}
	tmp, err := os.MkdirTemp("", "geosir-loadbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := loadBenchReport{Seed: seed, Cores: runtime.NumCPU()}
	for _, demo := range sizes {
		row, nq, err := loadBenchOne(tmp, demo, seed)
		if err != nil {
			return fmt.Errorf("demo %d: %w", demo, err)
		}
		report.Queries = nq
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(os.Stderr,
			"demo=%-5d gsir2 %8.2fms  v3-heap %8.2fms  v3-mmap %8.3fms  (%.0fx)  cold p50 %.1fus p99 %.1fus\n",
			demo, row.Gsir2LoadMs, row.Gsir3HeapLoadMs, row.Gsir3MmapOpenMs,
			row.OpenSpeedup, row.MmapColdP50Us, row.MmapColdP99Us)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// loadBenchOne measures one demo size. It returns the row and the query
// count (constant across sizes given the fixed per-image query spec).
func loadBenchOne(tmp string, demo int, seed int64) (loadBenchRow, int, error) {
	row := loadBenchRow{Demo: demo}

	// Build and freeze the base, then derive the query workload from the
	// same generator state runShardBench uses.
	builder := geosir.New(geosir.DefaultOptions())
	if err := fillBase(builder, "", demo, seed); err != nil {
		return row, 0, err
	}
	if err := builder.Freeze(); err != nil {
		return row, 0, err
	}
	spec := synth.PaperSpec(float64(demo)/10000, seed)
	spec.Images = demo
	images := synth.GenerateBase(spec)
	queries := synth.Queries(rand.New(rand.NewSource(seed+7)), images, 8, 0.01)
	row.Images = builder.NumImages()
	row.Entries = builder.NumEntries()

	p2 := filepath.Join(tmp, fmt.Sprintf("base-%d.gsir2", demo))
	p3 := filepath.Join(tmp, fmt.Sprintf("base-%d.gsir3", demo))
	if err := builder.SaveFileAs(p2, geosir.FormatGSIR2); err != nil {
		return row, 0, err
	}
	if err := builder.SaveFileAs(p3, geosir.FormatGSIR3); err != nil {
		return row, 0, err
	}
	for _, f := range []struct {
		path string
		dst  *int64
	}{{p2, &row.Gsir2Bytes}, {p3, &row.Gsir3Bytes}} {
		fi, err := os.Stat(f.path)
		if err != nil {
			return row, 0, err
		}
		*f.dst = fi.Size()
	}

	// GSIR2 decode: the baseline every speedup column divides by.
	d2, _, err := bestLoad(3, func() (*geosir.Engine, error) { return geosir.LoadFile(p2) })
	if err != nil {
		return row, 0, err
	}
	row.Gsir2LoadMs = millis(d2)

	// GSIR3 heap assemble, with the retained-bytes delta measured once
	// outside the timing loop (GC runs would pollute the wall times).
	d3, _, err := bestLoad(3, func() (*geosir.Engine, error) { return geosir.LoadFile(p3) })
	if err != nil {
		return row, 0, err
	}
	row.Gsir3HeapLoadMs = millis(d3)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	heapEng, err := geosir.LoadFile(p3)
	if err != nil {
		return row, 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		row.HeapLoadBytes = int64(m1.HeapAlloc - m0.HeapAlloc)
	}

	// GSIR3 mmap open. Close each probe open so the sweep does not
	// accumulate mappings; keep the last one for the query passes.
	dm, mmapEng, err := bestLoad(5, func() (*geosir.Engine, error) { return geosir.LoadFileMmap(p3) })
	if err != nil {
		return row, 0, err
	}
	row.Gsir3MmapOpenMs = millis(dm)
	if row.Gsir3MmapOpenMs > 0 {
		row.OpenSpeedup = row.Gsir2LoadMs / row.Gsir3MmapOpenMs
	}
	defer mmapEng.Close()
	row.MappedBytes = mmapEng.StorageStats().MappedBytes

	// Cold pass on the freshly opened mapping, cross-checked against the
	// decoded engine; then a warm second pass.
	heapCold, heapResp, err := queryPass(heapEng, queries)
	if err != nil {
		return row, 0, err
	}
	mmapCold, mmapResp, err := queryPass(mmapEng, queries)
	if err != nil {
		return row, 0, err
	}
	for i := range heapResp {
		if !bytes.Equal(heapResp[i], mmapResp[i]) {
			return row, 0, fmt.Errorf("query %d: mmap response differs from heap response", i)
		}
	}
	mmapWarm, _, err := queryPass(mmapEng, queries)
	if err != nil {
		return row, 0, err
	}
	row.HeapColdP50Us = pctUs(heapCold, 0.50)
	row.MmapColdP50Us = pctUs(mmapCold, 0.50)
	row.MmapColdP99Us = pctUs(mmapCold, 0.99)
	row.MmapWarmP50Us = pctUs(mmapWarm, 0.50)
	runtime.KeepAlive(heapEng)
	return row, len(queries), nil
}

// bestLoad runs the loader n times and returns the best wall time with
// the final engine (intermediate engines are closed — harmless for heap
// loads, unmapping for mmap opens).
func bestLoad(n int, load func() (*geosir.Engine, error)) (time.Duration, *geosir.Engine, error) {
	var best time.Duration = -1
	var keep *geosir.Engine
	for i := 0; i < n; i++ {
		t0 := time.Now()
		eng, err := load()
		d := time.Since(t0)
		if err != nil {
			return 0, nil, err
		}
		if best < 0 || d < best {
			best = d
		}
		if keep != nil {
			keep.Close()
		}
		keep = eng
	}
	return best, keep, nil
}

// queryPass runs every query once, sequentially, returning per-query
// latencies and the JSON-encoded responses (for equivalence checks).
func queryPass(eng *geosir.Engine, queries []geosir.Shape) ([]time.Duration, [][]byte, error) {
	lats := make([]time.Duration, 0, len(queries))
	resps := make([][]byte, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		resp, err := eng.Search(context.Background(),
			geosir.SearchRequest{Query: q, K: 5, Mode: geosir.ModeExact})
		if err != nil {
			return nil, nil, err
		}
		lats = append(lats, time.Since(t0))
		enc, err := json.Marshal(resp)
		if err != nil {
			return nil, nil, err
		}
		resps = append(resps, enc)
	}
	return lats, resps, nil
}

func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func pctUs(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(p*float64(len(s)-1))].Nanoseconds()) / 1e3
}
