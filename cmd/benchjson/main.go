// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, so successive PRs can track query
// throughput without parsing bench text. Typical use (see the Makefile's
// bench-query target):
//
//	go test -run '^$' -bench 'BenchmarkFig2|BenchmarkMatch_Scaling' \
//	    -benchmem . | go run ./cmd/benchjson -out BENCH_query.json
//
// With -cache it instead merges two geosir-loadgen JSON summaries (a
// cache-off baseline and a cache-on run of the same workload) into a
// cache benchmark report (see the Makefile's bench-cache target):
//
//	go run ./cmd/benchjson -cache -baseline /tmp/off.json \
//	    -cached /tmp/on.json -out BENCH_cache.json
//
// With -ingest it wraps a single geosir-loadgen -write-ratio summary
// into an ingest benchmark report (see the Makefile's bench-ingest
// target):
//
//	go run ./cmd/benchjson -ingest -run /tmp/mixed.json \
//	    -out BENCH_ingest.json
//
// With -throughput it merges one or more geosir-loadgen concurrency-
// sweep summaries (comma-separated paths, typically one per execution
// policy) into a throughput benchmark report with one row per
// (exec, concurrency) pair (see the Makefile's bench-throughput
// target):
//
//	go run ./cmd/benchjson -throughput \
//	    -runs /tmp/auto.json,/tmp/fanout.json -out BENCH_throughput.json
//
// With -load it wraps a geosir -load-bench sweep into a snapshot-load
// benchmark report (see the Makefile's bench-load target):
//
//	go run ./cmd/benchjson -load -run /tmp/load.json -out BENCH_load.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// QueriesPerSec is 1e9 / NsPerOp — the headline throughput number.
	QueriesPerSec float64 `json:"queries_per_sec"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level structure.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// CacheReport merges a cache-off and a cache-on loadgen run of the same
// workload into one gateable document. Kind is always "cache" so
// cmd/benchdiff can tell this shape apart from a bench Report.
type CacheReport struct {
	Kind        string  `json:"kind"`
	BaselineQPS float64 `json:"baseline_qps"`
	CachedQPS   float64 `json:"cached_qps"`
	// Speedup is CachedQPS / BaselineQPS — the headline number the
	// bench-cache target prints and benchdiff gates.
	Speedup float64 `json:"speedup"`
	HitRate float64 `json:"hit_rate"`
	// Baseline and Cached embed the full loadgen summaries verbatim so
	// the BENCH file stands alone (latency percentiles, mix, status).
	Baseline json.RawMessage `json:"baseline"`
	Cached   json.RawMessage `json:"cached"`
}

// IngestReport wraps one loadgen -write-ratio run into a gateable
// document. Kind is always "ingest" so cmd/benchdiff can tell this
// shape apart from the others.
type IngestReport struct {
	Kind string `json:"kind"`
	// QPS is the mixed read+write throughput the run achieved — the
	// headline number benchdiff gates.
	QPS        float64 `json:"qps"`
	WriteRatio float64 `json:"write_ratio"`
	Inserts    int     `json:"inserts"`
	Deletes    int     `json:"deletes"`
	// WriteP50Ms / WriteP95Ms are the write path's latency quantiles
	// (the "ingest" kind in the loadgen summary), reported for tracking.
	WriteP50Ms float64 `json:"write_p50_ms"`
	WriteP95Ms float64 `json:"write_p95_ms"`
	// Run embeds the full loadgen summary verbatim so the BENCH file
	// stands alone.
	Run json.RawMessage `json:"run"`
}

// ThroughputReport merges one loadgen concurrency sweep per execution
// policy into a gateable document. Kind is always "throughput" so
// cmd/benchdiff can tell this shape apart from the others.
type ThroughputReport struct {
	Kind string `json:"kind"`
	// Rows holds one entry per (exec, concurrency) pair, in run order.
	// QPS is the headline number benchdiff gates per row.
	Rows []ThroughputRow `json:"rows"`
	// Runs embeds the full loadgen summaries verbatim so the BENCH file
	// stands alone.
	Runs []json.RawMessage `json:"runs"`
}

// ThroughputRow is one (execution policy, concurrency level) cell of the
// sweep.
type ThroughputRow struct {
	Exec        string  `json:"exec"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
}

// LoadReport wraps one geosir -load-bench sweep into a gateable
// document. Kind is always "load" so cmd/benchdiff can tell this shape
// apart from the others.
type LoadReport struct {
	Kind string `json:"kind"`
	// Rows holds one entry per demo size, copied from the sweep: the
	// mmap open time is the headline number benchdiff gates, and
	// OpenSpeedup (GSIR2 decode time / mmap open time) is the claim the
	// bench exists to demonstrate.
	Rows []LoadRow `json:"rows"`
	// Run embeds the full geosir -load-bench report verbatim so the
	// BENCH file stands alone.
	Run json.RawMessage `json:"run"`
}

// LoadRow is one demo-size cell of the load sweep.
type LoadRow struct {
	Demo            int     `json:"demo"`
	Gsir2LoadMs     float64 `json:"gsir2_load_ms"`
	Gsir3HeapLoadMs float64 `json:"gsir3_heap_load_ms"`
	Gsir3MmapOpenMs float64 `json:"gsir3_mmap_open_ms"`
	OpenSpeedup     float64 `json:"open_speedup_vs_gsir2"`
	MmapColdP50Us   float64 `json:"mmap_cold_p50_us"`
	MmapColdP99Us   float64 `json:"mmap_cold_p99_us"`
	MappedBytes     int64   `json:"mapped_bytes"`
}

// loadgenRun is the slice of geosir-loadgen's JSON summary the merges
// need.
type loadgenRun struct {
	AchievedQPS  float64 `json:"achieved_qps"`
	Concurrency  int     `json:"concurrency"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	WriteRatio   float64 `json:"write_ratio"`
	Inserts      int     `json:"inserts"`
	Deletes      int     `json:"deletes"`
	Exec         string  `json:"exec"`
	Overall      struct {
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	} `json:"overall"`
	Sweep []struct {
		Concurrency int     `json:"concurrency"`
		Requests    int     `json:"requests"`
		Errors      int     `json:"errors"`
		AchievedQPS float64 `json:"achieved_qps"`
		P50Ms       float64 `json:"p50_ms"`
		P99Ms       float64 `json:"p99_ms"`
	} `json:"sweep"`
	ByKind map[string]struct {
		Requests int     `json:"requests"`
		Errors   int     `json:"errors"`
		P50Ms    float64 `json:"p50_ms"`
		P95Ms    float64 `json:"p95_ms"`
	} `json:"by_kind"`
}

func main() {
	out := flag.String("out", "BENCH_query.json", "output file (- for stdout)")
	cacheMode := flag.Bool("cache", false, "merge two loadgen JSON summaries into a cache report instead of parsing bench output")
	baseline := flag.String("baseline", "", "cache-off loadgen JSON summary (with -cache)")
	cached := flag.String("cached", "", "cache-on loadgen JSON summary (with -cache)")
	ingestMode := flag.Bool("ingest", false, "wrap one loadgen -write-ratio summary into an ingest report instead of parsing bench output")
	runPath := flag.String("run", "", "input JSON summary: a mixed read/write loadgen run (with -ingest) or a geosir -load-bench sweep (with -load)")
	throughputMode := flag.Bool("throughput", false, "merge loadgen concurrency-sweep summaries into a throughput report instead of parsing bench output")
	runPaths := flag.String("runs", "", "comma-separated loadgen sweep JSON summaries (with -throughput)")
	loadMode := flag.Bool("load", false, "wrap one geosir -load-bench sweep into a snapshot-load report instead of parsing bench output")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*cacheMode, *ingestMode, *throughputMode, *loadMode} {
		if on {
			modes++
		}
	}
	var enc []byte
	var err error
	switch {
	case modes > 1:
		err = fmt.Errorf("-cache, -ingest, -throughput and -load are mutually exclusive")
	case *cacheMode:
		enc, err = mergeCache(*baseline, *cached)
	case *ingestMode:
		enc, err = wrapIngest(*runPath)
	case *throughputMode:
		enc, err = mergeThroughput(*runPaths)
	case *loadMode:
		enc, err = wrapLoad(*runPath)
	default:
		enc, err = parseBench()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parseBench() ([]byte, error) {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// mergeCache builds the CacheReport from the two loadgen summary files.
// A baseline with zero achieved QPS (or a run that was all errors) is an
// error rather than a division hazard: the bench did not measure what it
// claims to.
func mergeCache(baselinePath, cachedPath string) ([]byte, error) {
	if baselinePath == "" || cachedPath == "" {
		return nil, fmt.Errorf("-cache needs both -baseline and -cached")
	}
	baseRaw, base, err := loadRun(baselinePath)
	if err != nil {
		return nil, err
	}
	cachedRaw, cach, err := loadRun(cachedPath)
	if err != nil {
		return nil, err
	}
	if base.AchievedQPS <= 0 {
		return nil, fmt.Errorf("%s: baseline achieved_qps is %v", baselinePath, base.AchievedQPS)
	}
	rep := CacheReport{
		Kind:        "cache",
		BaselineQPS: base.AchievedQPS,
		CachedQPS:   cach.AchievedQPS,
		Speedup:     cach.AchievedQPS / base.AchievedQPS,
		HitRate:     cach.CacheHitRate,
		Baseline:    baseRaw,
		Cached:      cachedRaw,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "benchjson: cache speedup %.2fx (%.1f → %.1f qps), hit rate %.3f\n",
		rep.Speedup, rep.BaselineQPS, rep.CachedQPS, rep.HitRate)
	return append(enc, '\n'), nil
}

// wrapIngest builds the IngestReport from one mixed read/write loadgen
// summary. A run with no writes (write_ratio 0 or no inserts) is an
// error: the bench did not exercise the ingest path it claims to.
func wrapIngest(runPath string) ([]byte, error) {
	if runPath == "" {
		return nil, fmt.Errorf("-ingest needs -run")
	}
	raw, run, err := loadRun(runPath)
	if err != nil {
		return nil, err
	}
	if run.WriteRatio <= 0 || run.Inserts == 0 {
		return nil, fmt.Errorf("%s: not a write workload (write_ratio %v, inserts %d) — run loadgen with -write-ratio", runPath, run.WriteRatio, run.Inserts)
	}
	rep := IngestReport{
		Kind:       "ingest",
		QPS:        run.AchievedQPS,
		WriteRatio: run.WriteRatio,
		Inserts:    run.Inserts,
		Deletes:    run.Deletes,
		Run:        raw,
	}
	if wk, ok := run.ByKind["ingest"]; ok {
		rep.WriteP50Ms = wk.P50Ms
		rep.WriteP95Ms = wk.P95Ms
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "benchjson: ingest %.1f qps at write ratio %.2f (%d inserts, %d deletes), write p95 %.2f ms\n",
		rep.QPS, rep.WriteRatio, rep.Inserts, rep.Deletes, rep.WriteP95Ms)
	return append(enc, '\n'), nil
}

// mergeThroughput builds the ThroughputReport from one or more loadgen
// sweep summaries. A run without sweep rows still contributes one row
// (its single concurrency level); a run whose levels all errored out is
// an error rather than a silent gap in the table.
func mergeThroughput(runPaths string) ([]byte, error) {
	if runPaths == "" {
		return nil, fmt.Errorf("-throughput needs -runs FILE[,FILE...]")
	}
	rep := ThroughputReport{Kind: "throughput"}
	for _, path := range strings.Split(runPaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		raw, run, err := loadRun(path)
		if err != nil {
			return nil, err
		}
		exec := run.Exec
		if exec == "" {
			exec = "default"
		}
		if len(run.Sweep) == 0 {
			rep.Rows = append(rep.Rows, ThroughputRow{
				Exec:        exec,
				Concurrency: run.Concurrency,
				QPS:         run.AchievedQPS,
				P50Ms:       run.Overall.P50Ms,
				P99Ms:       run.Overall.P99Ms,
				Requests:    run.Requests,
				Errors:      run.Errors,
			})
		}
		for _, lv := range run.Sweep {
			if lv.Errors >= lv.Requests {
				return nil, fmt.Errorf("%s: every request errored at concurrency %d (%d/%d)",
					path, lv.Concurrency, lv.Errors, lv.Requests)
			}
			rep.Rows = append(rep.Rows, ThroughputRow{
				Exec:        exec,
				Concurrency: lv.Concurrency,
				QPS:         lv.AchievedQPS,
				P50Ms:       lv.P50Ms,
				P99Ms:       lv.P99Ms,
				Requests:    lv.Requests,
				Errors:      lv.Errors,
			})
		}
		rep.Runs = append(rep.Runs, raw)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("-runs %q selected no summaries", runPaths)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	for _, row := range rep.Rows {
		fmt.Fprintf(os.Stderr, "benchjson: throughput %-10s c=%-4d %8.1f qps  p50 %.2f ms  p99 %.2f ms\n",
			row.Exec, row.Concurrency, row.QPS, row.P50Ms, row.P99Ms)
	}
	return append(enc, '\n'), nil
}

// wrapLoad builds the LoadReport from one geosir -load-bench sweep. A
// sweep with no rows, a row that never measured the mmap open, or an
// mmap open no faster than the GSIR2 decode is an error: the bench did
// not measure (or did not deliver) what it claims to.
func wrapLoad(runPath string) ([]byte, error) {
	if runPath == "" {
		return nil, fmt.Errorf("-load needs -run")
	}
	data, err := os.ReadFile(runPath)
	if err != nil {
		return nil, err
	}
	var run struct {
		Rows []LoadRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("%s: %w", runPath, err)
	}
	if len(run.Rows) == 0 {
		return nil, fmt.Errorf("%s: no load-bench rows — run geosir -load-bench", runPath)
	}
	for _, row := range run.Rows {
		if row.Gsir3MmapOpenMs <= 0 {
			return nil, fmt.Errorf("%s: demo %d never measured the mmap open", runPath, row.Demo)
		}
		if row.OpenSpeedup <= 1 {
			return nil, fmt.Errorf("%s: demo %d mmap open (%.3f ms) is not faster than the GSIR2 decode (%.3f ms)",
				runPath, row.Demo, row.Gsir3MmapOpenMs, row.Gsir2LoadMs)
		}
	}
	rep := LoadReport{Kind: "load", Rows: run.Rows, Run: data}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	for _, row := range rep.Rows {
		fmt.Fprintf(os.Stderr, "benchjson: load demo=%-5d open %8.3f ms (%.0fx vs gsir2 %.1f ms)  cold p99 %.1f us\n",
			row.Demo, row.Gsir3MmapOpenMs, row.OpenSpeedup, row.Gsir2LoadMs, row.MmapColdP99Us)
	}
	return append(enc, '\n'), nil
}

func loadRun(path string) (json.RawMessage, *loadgenRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var run loadgenRun
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if run.Requests == 0 {
		return nil, nil, fmt.Errorf("%s: loadgen summary recorded no requests", path)
	}
	if run.Errors >= run.Requests {
		return nil, nil, fmt.Errorf("%s: every request errored (%d/%d)", path, run.Errors, run.Requests)
	}
	return json.RawMessage(data), &run, nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  31  72214467 ns/op  858776 B/op
// 3707 allocs/op  11.00 fattenings". Fields after the iteration count
// come in (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false, nil // e.g. a PASS/FAIL or header line
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, keeping sub-benchmark slashes.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // not a result line
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("parsing %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			if val > 0 {
				b.QueriesPerSec = 1e9 / val
			}
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true, nil
}
