// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, so successive PRs can track query
// throughput without parsing bench text. Typical use (see the Makefile's
// bench-query target):
//
//	go test -run '^$' -bench 'BenchmarkFig2|BenchmarkMatch_Scaling' \
//	    -benchmem . | go run ./cmd/benchjson -out BENCH_query.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// QueriesPerSec is 1e9 / NsPerOp — the headline throughput number.
	QueriesPerSec float64 `json:"queries_per_sec"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level structure.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_query.json", "output file (- for stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  31  72214467 ns/op  858776 B/op
// 3707 allocs/op  11.00 fattenings". Fields after the iteration count
// come in (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false, nil // e.g. a PASS/FAIL or header line
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, keeping sub-benchmark slashes.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // not a result line
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("parsing %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			if val > 0 {
				b.QueriesPerSec = 1e9 / val
			}
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true, nil
}
