// Command experiments regenerates every figure of the paper's evaluation
// and prints the same rows/series the paper reports.
//
// Usage:
//
//	experiments [-scale 0.02] [-seed 1] [-fig N | -all | -scaling | -hashing | -plans]
//
// -scale is the fraction of the paper's 10,000-image base to generate;
// 1.0 reproduces the full-size experiment (slow), the default 0.02 shows
// every trend in seconds. Figures: 1, 2, 5, 7, 8, 10.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/extstore"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "fraction of the paper's 10,000-image base")
		seed      = flag.Int64("seed", 1, "random seed")
		fig       = flag.Int("fig", 0, "reproduce one figure (1, 2, 5, 7, 8, 10)")
		all       = flag.Bool("all", false, "reproduce everything")
		scaling   = flag.Bool("scaling", false, "run the §2.5 polylog-scaling experiment")
		hashing   = flag.Bool("hashing", false, "run the §3 hash-family sweep")
		plans     = flag.Bool("plans", false, "run the §5.4 plan-ordering comparison")
		baselines = flag.Bool("baselines", false, "run the §1 related-work baseline comparison (chamfer matching)")
		extidx    = flag.Bool("extindex", false, "run the §4 external-memory auxiliary-index experiment")
		quality   = flag.Bool("quality", false, "run the noise-tolerance (precision vs distortion) study")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	if err := run(cfg, *fig, *all, *scaling, *hashing, *plans, *baselines, *extidx, *quality); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, fig int, all, scaling, hashing, plans, baselines, extidx, quality bool) error {
	none := fig == 0 && !all && !scaling && !hashing && !plans && !baselines && !extidx && !quality
	if none {
		all = true
	}
	var fixture *experiments.Fixture
	need := func() (*experiments.Fixture, error) {
		if fixture != nil {
			return fixture, nil
		}
		f, err := experiments.BuildFixture(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("# base: %s\n\n", f.Summary())
		fixture = f
		return f, nil
	}

	if all || fig == 1 {
		printFig1()
	}
	if all || fig == 2 {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printFig2(f); err != nil {
			return err
		}
	}
	if all || fig == 5 {
		printFig5()
	}
	if all || fig == 7 {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printFig7(f); err != nil {
			return err
		}
	}
	if all || fig == 8 {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printFig8(f); err != nil {
			return err
		}
	}
	if all || fig == 10 {
		if err := printFig10(cfg); err != nil {
			return err
		}
	}
	if all || scaling {
		if err := printScaling(cfg); err != nil {
			return err
		}
	}
	if all || hashing {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printHashing(f); err != nil {
			return err
		}
	}
	if all || plans {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printPlans(f); err != nil {
			return err
		}
	}
	if all || baselines {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printBaselines(f); err != nil {
			return err
		}
	}
	if all || extidx {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printExtIndex(f); err != nil {
			return err
		}
	}
	if all || quality {
		f, err := need()
		if err != nil {
			return err
		}
		if err := printQuality(f); err != nil {
			return err
		}
	}
	return nil
}

func printQuality(f *experiments.Fixture) error {
	rows, err := experiments.Quality(f, nil, 20)
	if err != nil {
		return err
	}
	fmt.Println("== noise tolerance: retrieval precision vs query distortion ==")
	fmt.Printf("  %12s %8s %8s %8s\n", "distortion", "P@1", "P@5", "MRR")
	for _, r := range rows {
		fmt.Printf("  %11.0f%% %8.2f %8.2f %8.2f\n", r.Distortion*100, r.P1, r.P5, r.MRR)
	}
	fmt.Println()
	return nil
}

func printExtIndex(f *experiments.Fixture) error {
	rows, err := experiments.ExtIndexIO(f, nil)
	if err != nil {
		return err
	}
	fmt.Println("== §4: external-memory auxiliary index (block-packed kd-tree) ==")
	fmt.Printf("  %12s %12s %16s %10s\n", "buf(blocks)", "idx blocks", "reads/query", "hit rate")
	for _, r := range rows {
		fmt.Printf("  %12d %12d %16.1f %10.2f\n",
			r.BufferBlocks, r.IndexBlocks, r.ReadsPerQry, r.HitRate)
	}
	fmt.Println()
	return nil
}

func printBaselines(f *experiments.Fixture) error {
	r, err := experiments.Chamfer(f, 15)
	if err != nil {
		return err
	}
	fmt.Println("== §1 related work: chamfer matching vs GeoSIR ==")
	fmt.Printf("  %-10s %10s %14s %18s\n", "method", "hits", "per query", "data touched/query")
	fmt.Printf("  %-10s %7d/%2d %11.0f µs %15.1f KB\n",
		"chamfer", r.ChamferHits, r.Queries, r.ChamferMicros, r.ChamferBytes/1024)
	fmt.Printf("  %-10s %7d/%2d %11.0f µs %15.1f KB\n",
		"GeoSIR", r.GeoSIRHits, r.Queries, r.GeoSIRMicros, r.GeoSIRBytes/1024)
	fmt.Println("  (chamfer scans every image's distance map per query — linear in the base;")
	fmt.Println("   GeoSIR touches index-pruned blocks)")
	fmt.Println()
	return nil
}

func printFig1() {
	r := experiments.Fig1()
	fmt.Println("== Figure 1: similarity-criterion discrimination ==")
	fmt.Println("Q vs A (spiked copy) and B (mildly perturbed copy):")
	fmt.Printf("  Hausdorff:   H(A,Q)=%.4f  H(B,Q)=%.4f  -> picks %s\n",
		r.HausdorffA, r.HausdorffB, pick(r.HausdorffA > r.HausdorffB, "B (spike dominates A)", "A"))
	fmt.Printf("  h_avg (sym): g(A,Q)=%.4f  g(B,Q)=%.4f  -> picks %s\n",
		r.AvgA, r.AvgB, pick(r.AvgPicksB, "B (intuitive match)", "A"))
	fmt.Println()
}

func pick(cond bool, yes, no string) string {
	if cond {
		return yes
	}
	return no
}

func printFig2(f *experiments.Fixture) error {
	r, err := experiments.Fig2(f, 30)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 2: robustness to local (edge-split) distortion ==")
	fmt.Printf("  %-28s %8s %14s\n", "method", "hits", "storage")
	fmt.Printf("  %-28s %5d/%2d %10d copies\n", "GeoSIR (diameter norm.)", r.GeoSIRHit, r.Trials, r.Entries)
	fmt.Printf("  %-28s %5d/%2d %10d vectors\n", "Mehrotra-Gary (edge norm.)", r.MGHit, r.Trials, r.MGVectors)
	fmt.Println()
	return nil
}

func printFig5() {
	fmt.Println("== Figure 5: hash-curve area function E(x) and dE/dx ==")
	fmt.Printf("  %6s %10s %10s\n", "x", "E(x)", "dE/dx")
	for _, row := range experiments.Fig5(21) {
		fmt.Printf("  %6.2f %10.6f %10.6f\n", row.X, row.E, row.DE)
	}
	fmt.Println()
}

func printFig7(f *experiments.Fixture) error {
	rows, err := experiments.Fig7(f, 10, 100)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 7: mean I/O operations per query (100-block buffer) ==")
	fmt.Printf("  %2s", "k")
	for _, l := range extstore.Layouts() {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("  %2d", row.K)
		for _, l := range extstore.Layouts() {
			fmt.Printf(" %14.2f", row.IO[l])
		}
		fmt.Println()
	}
	costs, err := experiments.Rehash(f)
	if err != nil {
		return err
	}
	fmt.Println("  rehash cost (from lexicographic):")
	for _, c := range costs {
		fmt.Printf("    %-14s comparisons=%-9d reads=%-5d writes=%d\n",
			c.Layout, c.Comparisons, c.BlockReads, c.BlockWrites)
	}
	fmt.Println()
	return nil
}

func printFig8(f *experiments.Fixture) error {
	rows, err := experiments.Fig8(f, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 8: mean I/O per query vs buffer size (k = 2) ==")
	fmt.Printf("  %8s", "buf(KB)")
	for _, l := range extstore.Layouts() {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("  %8d", row.BufferKB)
		for _, l := range extstore.Layouts() {
			fmt.Printf(" %14.2f", row.IO[l])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func printFig10(cfg experiments.Config) error {
	res, err := experiments.Fig10(cfg, 0.03, 40)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 10: #similar shapes vs significant vertices V_S ==")
	fmt.Printf("  experiment 1 (full base):  fitted c=%.1f  spearman=%.2f\n",
		res.C1, experiments.Spearman(res.Exp1))
	fmt.Printf("  experiment 2 (half base):  fitted c=%.1f  spearman=%.2f\n",
		res.C2, experiments.Spearman(res.Exp2))
	fmt.Printf("  %8s %10s %10s\n", "V_S", "matches#1", "matches#2")
	p1 := experiments.SortedVS(res.Exp1)
	p2 := experiments.SortedVS(res.Exp2)
	for i := range p1 {
		fmt.Printf("  %8.2f %10d %10d\n", p1[i].VS, p1[i].Matches, p2[i].Matches)
	}
	fmt.Println()
	return nil
}

func printScaling(cfg experiments.Config) error {
	rows, err := experiments.Scaling(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("== §2.5: retrieval cost vs base size (polylog claim) ==")
	fmt.Printf("  %8s %10s %12s %12s %14s\n", "images", "vertices", "avg µs", "avg iters", "avg K counted")
	for _, r := range rows {
		fmt.Printf("  %8d %10d %12.1f %12.2f %14.1f\n",
			r.Images, r.Vertices, r.AvgMicros, r.AvgIterations, r.AvgVertsCounted)
	}
	fmt.Println()
	return nil
}

func printHashing(f *experiments.Fixture) error {
	rows, err := experiments.Hashing(f, nil)
	if err != nil {
		return err
	}
	fmt.Println("== §3: hash-family sweep ==")
	fmt.Printf("  %8s %12s %10s %14s %8s\n", "curves", "mean bucket", "max", "avg candidates", "hit rate")
	for _, r := range rows {
		fmt.Printf("  %8d %12.2f %10d %14.1f %8.2f\n",
			r.Curves, r.MeanBucket, r.MaxBucket, r.AvgCandidates, r.HitRate)
	}
	fam, err := experiments.FamilyAblation(f, 50)
	if err != nil {
		return err
	}
	fmt.Println("  curve-family comparison (50 curves/quarter):")
	fmt.Printf("    %-10s %10s %12s %14s %8s\n", "family", "build µs", "mean bucket", "avg candidates", "hit rate")
	for _, r := range fam {
		fmt.Printf("    %-10s %10.0f %12.2f %14.1f %8.2f\n",
			r.Name, r.BuildMicros, r.MeanBucket, r.AvgCandidates, r.HitRate)
	}
	fmt.Println()
	return nil
}

func printPlans(f *experiments.Fixture) error {
	rows, err := experiments.Plans(f)
	if err != nil {
		return err
	}
	fmt.Println("== §5.4: selectivity-ordered plans vs naive evaluation ==")
	fmt.Printf("  %-44s %10s %10s %8s\n", "query", "planned", "naive", "result")
	for _, r := range rows {
		fmt.Printf("  %-44s %10d %10d %8d\n", r.Query, r.PlannedChecks, r.NaiveChecks, r.ResultSize)
	}
	fmt.Println()
	return nil
}
