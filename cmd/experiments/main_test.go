package main

import (
	"testing"

	"repro/internal/experiments"
)

// tinyCfg keeps the smoke runs fast.
func tinyCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.003 // 30 images
	cfg.Queries = 3
	return cfg
}

// TestRunSingleFigures drives every print path once at tiny scale — a
// smoke test that the full -all pipeline cannot panic or error.
func TestRunSingleFigures(t *testing.T) {
	cfg := tinyCfg()
	for _, fig := range []int{1, 2, 5} {
		if err := run(cfg, fig, false, false, false, false, false, false, false); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
}

func TestRunStorageFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("storage figures are slow")
	}
	cfg := tinyCfg()
	for _, fig := range []int{7, 8} {
		if err := run(cfg, fig, false, false, false, false, false, false, false); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
}

func TestRunAnalyses(t *testing.T) {
	if testing.Short() {
		t.Skip("analyses are slow")
	}
	cfg := tinyCfg()
	if err := run(cfg, 0, false, false, true, true, false, false, false); err != nil {
		t.Fatalf("hashing/plans: %v", err)
	}
	if err := run(cfg, 0, false, false, false, false, true, true, false); err != nil {
		t.Fatalf("baselines/extindex: %v", err)
	}
}
