// Command benchdiff compares two benchmark JSON files produced by
// cmd/benchjson and prints per-benchmark deltas. It exits nonzero when
// any benchmark present in both files regressed on ns/op by more than
// the threshold (default 10%), or dropped a reported "recall" metric by
// more than -recall-threshold absolute (default 0.02 — recall is a
// fraction in [0,1], so percent-relative gating would be far too lax
// near 1.0), so CI and pre-commit hooks can gate on committed
// baselines:
//
//	go run ./cmd/benchdiff BENCH_query.json /tmp/BENCH_new.json
//	go run ./cmd/benchdiff -threshold 5 old.json new.json
//	go run ./cmd/benchdiff -recall-threshold 0.01 BENCH_ann.json /tmp/BENCH_ann_new.json
//
// Benchmarks present in only one of the files are listed but never
// fail the comparison (new benchmarks appear, retired ones vanish).
//
// Cache reports (benchjson -cache output, "kind": "cache") are
// auto-detected and compared on their own axes: cached QPS regressing by
// more than -threshold percent, or the hit rate dropping by more than
// -hit-rate-threshold absolute (default 0.02 — like recall, a hit rate
// lives in [0,1] and percent-relative gating near 1.0 is far too lax),
// fails the comparison.
//
// Ingest reports (benchjson -ingest output, "kind": "ingest") are
// likewise auto-detected: mixed read/write QPS regressing by more than
// -threshold percent fails; the write-path p95 latency is printed for
// tracking but not gated (it rides on machine load far more than the
// throughput does).
//
// Throughput reports (benchjson -throughput output, "kind":
// "throughput") are likewise auto-detected: rows are matched by
// (exec, concurrency) and any matched row regressing QPS by more than
// -threshold percent fails. Latency percentiles are printed for
// tracking but not gated. Rows present in only one file are listed but
// never fail (sweep levels come and go with the Makefile target).
//
// Load reports (benchjson -load output, "kind": "load") are likewise
// auto-detected: rows are matched by demo size and any matched row
// regressing the GSIR3 mmap open time by more than -threshold percent
// fails. The decode baseline, open speedup, and cold-query percentiles
// are printed for tracking but not gated (the speedup moves with the
// decode baseline's machine speed; the open time isolates what the
// mmap path itself delivers).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors cmd/benchjson's output structure (only the fields the
// comparison needs).
type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

func main() {
	threshold := flag.Float64("threshold", 10, "max allowed ns/op (or cache QPS) regression in percent before exiting nonzero")
	recallThreshold := flag.Float64("recall-threshold", 0.02, "max allowed absolute drop in a reported recall metric before exiting nonzero")
	hitRateThreshold := flag.Float64("hit-rate-threshold", 0.02, "max allowed absolute drop in a cache report's hit rate before exiting nonzero")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold PCT] [-recall-threshold ABS] [-hit-rate-threshold ABS] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold, *recallThreshold, *hitRateThreshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, threshold, recallThreshold, hitRateThreshold float64) error {
	// Cache reports are a different document shape: dispatch on it before
	// insisting on bench lines. Mixing the two shapes is a usage error.
	oldCache, err := loadCache(oldPath)
	if err != nil {
		return err
	}
	newCache, err := loadCache(newPath)
	if err != nil {
		return err
	}
	if (oldCache != nil) != (newCache != nil) {
		return fmt.Errorf("cannot compare a cache report with a bench report (%s vs %s)", oldPath, newPath)
	}
	if oldCache != nil {
		return diffCache(oldCache, newCache, threshold, hitRateThreshold)
	}
	oldIngest, err := loadIngest(oldPath)
	if err != nil {
		return err
	}
	newIngest, err := loadIngest(newPath)
	if err != nil {
		return err
	}
	if (oldIngest != nil) != (newIngest != nil) {
		return fmt.Errorf("cannot compare an ingest report with a bench report (%s vs %s)", oldPath, newPath)
	}
	if oldIngest != nil {
		return diffIngest(oldIngest, newIngest, threshold)
	}
	oldTput, err := loadThroughput(oldPath)
	if err != nil {
		return err
	}
	newTput, err := loadThroughput(newPath)
	if err != nil {
		return err
	}
	if (oldTput != nil) != (newTput != nil) {
		return fmt.Errorf("cannot compare a throughput report with a bench report (%s vs %s)", oldPath, newPath)
	}
	if oldTput != nil {
		return diffThroughput(oldTput, newTput, threshold)
	}
	oldLoad, err := loadLoad(oldPath)
	if err != nil {
		return err
	}
	newLoad, err := loadLoad(newPath)
	if err != nil {
		return err
	}
	if (oldLoad != nil) != (newLoad != nil) {
		return fmt.Errorf("cannot compare a load report with a bench report (%s vs %s)", oldPath, newPath)
	}
	if oldLoad != nil {
		return diffLoad(oldLoad, newLoad, threshold)
	}

	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := byName(oldRep)
	newBy := byName(newRep)

	regressed := 0
	recallRegressed := 0
	// Walk the new file's order so the output reads like the bench run.
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-50s  (new benchmark)         %12.0f ns/op\n", nb.Name, nb.NsPerOp)
			continue
		}
		d := pctDelta(ob.NsPerOp, nb.NsPerOp)
		flagStr := ""
		if d > threshold {
			flagStr = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-50s  %12.0f → %12.0f ns/op  %+7.2f%%%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, d, flagStr)
		if ob.BytesPerOp != 0 || nb.BytesPerOp != 0 {
			fmt.Printf("%-50s  %12.0f → %12.0f B/op   %+7.2f%%\n",
				"", ob.BytesPerOp, nb.BytesPerOp, pctDelta(ob.BytesPerOp, nb.BytesPerOp))
		}
		if ob.AllocsPerOp != 0 || nb.AllocsPerOp != 0 {
			fmt.Printf("%-50s  %12.0f → %12.0f allocs %+7.2f%%\n",
				"", ob.AllocsPerOp, nb.AllocsPerOp, pctDelta(ob.AllocsPerOp, nb.AllocsPerOp))
		}
		// Recall is gated on absolute drop: it lives in [0,1] and CI cares
		// about "lost 3 points of recall", not relative change. A recall
		// metric that vanished entirely also fails — silently dropping the
		// measurement must not pass the gate.
		oldRecall, oldHas := ob.Metrics["recall"]
		newRecall, newHas := nb.Metrics["recall"]
		switch {
		case oldHas && !newHas:
			fmt.Printf("%-50s  %12.4f → %12s recall  RECALL GONE\n", "", oldRecall, "(missing)")
			recallRegressed++
		case oldHas && newHas:
			drop := oldRecall - newRecall
			flagStr := ""
			if drop > recallThreshold {
				flagStr = "  RECALL REGRESSION"
				recallRegressed++
			}
			fmt.Printf("%-50s  %12.4f → %12.4f recall %+7.4f%s\n",
				"", oldRecall, newRecall, newRecall-oldRecall, flagStr)
		}
	}
	for _, ob := range oldRep.Benchmarks {
		if _, ok := newBy[ob.Name]; !ok {
			fmt.Printf("%-50s  (gone: only in %s)\n", ob.Name, oldPath)
		}
	}
	if regressed > 0 || recallRegressed > 0 {
		var parts []string
		if regressed > 0 {
			parts = append(parts, fmt.Sprintf("%d benchmark(s) regressed ns/op by more than %.1f%%", regressed, threshold))
		}
		if recallRegressed > 0 {
			parts = append(parts, fmt.Sprintf("%d benchmark(s) dropped recall by more than %.3f", recallRegressed, recallThreshold))
		}
		return fmt.Errorf("%s", strings.Join(parts, "; "))
	}
	return nil
}

// cacheReport mirrors cmd/benchjson's CacheReport (only the gated
// fields).
type cacheReport struct {
	Kind        string  `json:"kind"`
	BaselineQPS float64 `json:"baseline_qps"`
	CachedQPS   float64 `json:"cached_qps"`
	Speedup     float64 `json:"speedup"`
	HitRate     float64 `json:"hit_rate"`
}

// loadCache returns the file's cache report, or nil when the file is not
// one (a plain bench report, handled by load). Read errors are real.
func loadCache(path string) (*cacheReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep cacheReport
	if err := json.Unmarshal(data, &rep); err != nil || rep.Kind != "cache" {
		return nil, nil
	}
	return &rep, nil
}

// diffCache gates a cache report pair on cached QPS (percent-relative)
// and hit rate (absolute drop). Speedup is printed but not gated
// directly — it moves with the baseline machine's speed, while cached
// QPS and hit rate isolate what the cache itself delivers.
func diffCache(oldRep, newRep *cacheReport, threshold, hitRateThreshold float64) error {
	qpsDelta := pctDelta(oldRep.CachedQPS, newRep.CachedQPS)
	hitDrop := oldRep.HitRate - newRep.HitRate
	var fails []string
	if -qpsDelta > threshold {
		fails = append(fails, fmt.Sprintf("cached QPS regressed %.1f%% (limit %.1f%%)", -qpsDelta, threshold))
	}
	if hitDrop > hitRateThreshold {
		fails = append(fails, fmt.Sprintf("hit rate dropped %.3f (limit %.3f)", hitDrop, hitRateThreshold))
	}
	fmt.Printf("%-24s  %12.1f → %12.1f qps  %+7.2f%%\n", "cached QPS", oldRep.CachedQPS, newRep.CachedQPS, qpsDelta)
	fmt.Printf("%-24s  %12.1f → %12.1f qps  %+7.2f%%\n", "baseline QPS", oldRep.BaselineQPS, newRep.BaselineQPS, pctDelta(oldRep.BaselineQPS, newRep.BaselineQPS))
	fmt.Printf("%-24s  %12.2fx → %11.2fx\n", "speedup", oldRep.Speedup, newRep.Speedup)
	fmt.Printf("%-24s  %12.3f → %12.3f  %+.4f\n", "hit rate", oldRep.HitRate, newRep.HitRate, -hitDrop)
	if len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	return nil
}

// ingestReport mirrors cmd/benchjson's IngestReport (only the compared
// fields).
type ingestReport struct {
	Kind       string  `json:"kind"`
	QPS        float64 `json:"qps"`
	WriteRatio float64 `json:"write_ratio"`
	Inserts    int     `json:"inserts"`
	Deletes    int     `json:"deletes"`
	WriteP95Ms float64 `json:"write_p95_ms"`
}

// loadIngest returns the file's ingest report, or nil when the file is
// not one. Read errors are real.
func loadIngest(path string) (*ingestReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ingestReport
	if err := json.Unmarshal(data, &rep); err != nil || rep.Kind != "ingest" {
		return nil, nil
	}
	return &rep, nil
}

// diffIngest gates an ingest report pair on mixed QPS (percent-relative).
// A write-ratio mismatch is a usage error: the two runs measured
// different workloads, so their throughput is not comparable. Write p95
// and the insert/delete counts are printed but not gated.
func diffIngest(oldRep, newRep *ingestReport, threshold float64) error {
	if oldRep.WriteRatio != newRep.WriteRatio {
		return fmt.Errorf("write ratio changed %.2f → %.2f: reports are not comparable", oldRep.WriteRatio, newRep.WriteRatio)
	}
	qpsDelta := pctDelta(oldRep.QPS, newRep.QPS)
	fmt.Printf("%-24s  %12.1f → %12.1f qps  %+7.2f%%\n", "mixed QPS", oldRep.QPS, newRep.QPS, qpsDelta)
	fmt.Printf("%-24s  %12.2f → %12.2f ms\n", "write p95", oldRep.WriteP95Ms, newRep.WriteP95Ms)
	fmt.Printf("%-24s  %6d/%-5d → %6d/%-5d\n", "inserts/deletes", oldRep.Inserts, oldRep.Deletes, newRep.Inserts, newRep.Deletes)
	if -qpsDelta > threshold {
		return fmt.Errorf("mixed QPS regressed %.1f%% (limit %.1f%%)", -qpsDelta, threshold)
	}
	return nil
}

// throughputReport mirrors cmd/benchjson's ThroughputReport (only the
// compared fields).
type throughputReport struct {
	Kind string `json:"kind"`
	Rows []struct {
		Exec        string  `json:"exec"`
		Concurrency int     `json:"concurrency"`
		QPS         float64 `json:"qps"`
		P50Ms       float64 `json:"p50_ms"`
		P99Ms       float64 `json:"p99_ms"`
	} `json:"rows"`
}

// loadThroughput returns the file's throughput report, or nil when the
// file is not one. Read errors are real.
func loadThroughput(path string) (*throughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep throughputReport
	if err := json.Unmarshal(data, &rep); err != nil || rep.Kind != "throughput" {
		return nil, nil
	}
	return &rep, nil
}

// diffThroughput gates a throughput report pair on per-row QPS
// (percent-relative), matching rows by (exec, concurrency). Latency is
// printed but not gated: the QPS rows already express the capacity
// contract, and tail latency on a saturated sweep level is dominated by
// queueing noise.
func diffThroughput(oldRep, newRep *throughputReport, threshold float64) error {
	type key struct {
		exec string
		conc int
	}
	oldBy := make(map[key]int, len(oldRep.Rows))
	for i, row := range oldRep.Rows {
		oldBy[key{row.Exec, row.Concurrency}] = i
	}
	seen := make(map[key]bool, len(newRep.Rows))
	regressed := 0
	for _, nr := range newRep.Rows {
		k := key{nr.Exec, nr.Concurrency}
		seen[k] = true
		label := fmt.Sprintf("%s c=%d", nr.Exec, nr.Concurrency)
		oi, ok := oldBy[k]
		if !ok {
			fmt.Printf("%-24s  (new row)     %12.1f qps  p99 %.2f ms\n", label, nr.QPS, nr.P99Ms)
			continue
		}
		or := oldRep.Rows[oi]
		d := pctDelta(or.QPS, nr.QPS)
		flagStr := ""
		if -d > threshold {
			flagStr = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-24s  %12.1f → %12.1f qps  %+7.2f%%  (p99 %.2f → %.2f ms)%s\n",
			label, or.QPS, nr.QPS, d, or.P99Ms, nr.P99Ms, flagStr)
	}
	for _, or := range oldRep.Rows {
		if k := (key{or.Exec, or.Concurrency}); !seen[k] {
			fmt.Printf("%s c=%d  (gone: only in the old report)\n", or.Exec, or.Concurrency)
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d throughput row(s) regressed QPS by more than %.1f%%", regressed, threshold)
	}
	return nil
}

// loadReport mirrors cmd/benchjson's LoadReport (only the compared
// fields).
type loadReport struct {
	Kind string `json:"kind"`
	Rows []struct {
		Demo          int     `json:"demo"`
		Gsir2LoadMs   float64 `json:"gsir2_load_ms"`
		MmapOpenMs    float64 `json:"gsir3_mmap_open_ms"`
		OpenSpeedup   float64 `json:"open_speedup_vs_gsir2"`
		MmapColdP50Us float64 `json:"mmap_cold_p50_us"`
		MmapColdP99Us float64 `json:"mmap_cold_p99_us"`
	} `json:"rows"`
}

// loadLoad returns the file's load report, or nil when the file is not
// one. Read errors are real.
func loadLoad(path string) (*loadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil || rep.Kind != "load" {
		return nil, nil
	}
	return &rep, nil
}

// diffLoad gates a load report pair on the GSIR3 mmap open time
// (percent-relative, higher is worse), matching rows by demo size.
// Speedup and cold-query latency are printed but not gated.
func diffLoad(oldRep, newRep *loadReport, threshold float64) error {
	oldBy := make(map[int]int, len(oldRep.Rows))
	for i, row := range oldRep.Rows {
		oldBy[row.Demo] = i
	}
	seen := make(map[int]bool, len(newRep.Rows))
	regressed := 0
	for _, nr := range newRep.Rows {
		seen[nr.Demo] = true
		label := fmt.Sprintf("load demo=%d", nr.Demo)
		oi, ok := oldBy[nr.Demo]
		if !ok {
			fmt.Printf("%-24s  (new row)     %12.3f ms open  %.0fx vs gsir2\n", label, nr.MmapOpenMs, nr.OpenSpeedup)
			continue
		}
		or := oldRep.Rows[oi]
		d := pctDelta(or.MmapOpenMs, nr.MmapOpenMs)
		flagStr := ""
		if d > threshold {
			flagStr = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-24s  %12.3f → %12.3f ms open  %+7.2f%%  (%.0fx → %.0fx, cold p99 %.1f → %.1f us)%s\n",
			label, or.MmapOpenMs, nr.MmapOpenMs, d, or.OpenSpeedup, nr.OpenSpeedup,
			or.MmapColdP99Us, nr.MmapColdP99Us, flagStr)
	}
	for _, or := range oldRep.Rows {
		if !seen[or.Demo] {
			fmt.Printf("load demo=%d  (gone: only in the old report)\n", or.Demo)
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d load row(s) regressed mmap open time by more than %.1f%%", regressed, threshold)
	}
	return nil
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

func byName(rep *report) map[string]benchmark {
	m := make(map[string]benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// pctDelta returns the percent change from old to new; a zero old value
// (benchmark without that stat) compares as no change.
func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
