package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLatencyGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1050},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1200},
	}})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("5%% slower should pass the 10%% gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02, 0.02); err == nil {
		t.Fatal("20% slower should fail the 10% gate")
	}
}

func TestRunRecallGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.97}},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.96}},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.90}},
	}})
	goneP := writeReport(t, dir, "gone.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000},
	}})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("0.01 absolute drop should pass the 0.02 gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02, 0.02); err == nil {
		t.Fatal("0.07 absolute drop should fail the 0.02 gate")
	} else if !strings.Contains(err.Error(), "recall") {
		t.Fatalf("error should name recall: %v", err)
	}
	if err := run(oldP, goneP, 10, 0.02, 0.02); err == nil {
		t.Fatal("vanished recall metric should fail the gate")
	}
	// New benchmarks gaining recall never fail (no baseline to regress from).
	if err := run(goneP, oldP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("gaining a recall metric should pass: %v", err)
	}
}

func writeCacheReport(t *testing.T, dir, name string, rep cacheReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCacheGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeCacheReport(t, dir, "old.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 15000, Speedup: 15, HitRate: 0.95,
	})
	okP := writeCacheReport(t, dir, "ok.json", cacheReport{
		Kind: "cache", BaselineQPS: 990, CachedQPS: 14500, Speedup: 14.6, HitRate: 0.94,
	})
	slowP := writeCacheReport(t, dir, "slow.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 12000, Speedup: 12, HitRate: 0.95,
	})
	coldP := writeCacheReport(t, dir, "cold.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 15000, Speedup: 15, HitRate: 0.80,
	})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("small QPS/hit-rate wiggle should pass: %v", err)
	}
	if err := run(oldP, slowP, 10, 0.02, 0.02); err == nil {
		t.Fatal("20% cached-QPS regression should fail the 10% gate")
	} else if !strings.Contains(err.Error(), "QPS") {
		t.Fatalf("error should name QPS: %v", err)
	}
	if err := run(oldP, coldP, 10, 0.02, 0.02); err == nil {
		t.Fatal("0.15 hit-rate drop should fail the 0.02 gate")
	} else if !strings.Contains(err.Error(), "hit rate") {
		t.Fatalf("error should name hit rate: %v", err)
	}
	// Shape mismatch is a usage error, not a silent pass.
	benchP := writeReport(t, dir, "bench.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	if err := run(oldP, benchP, 10, 0.02, 0.02); err == nil {
		t.Fatal("comparing a cache report with a bench report should fail")
	}
}

func writeThroughputReport(t *testing.T, dir, name string, rep throughputReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func tputReport(cells ...[3]float64) throughputReport {
	// Each cell is {execIdx (0=auto, 1=fanout), concurrency, qps}.
	rep := throughputReport{Kind: "throughput"}
	execs := []string{"auto", "fanout"}
	for _, c := range cells {
		rep.Rows = append(rep.Rows, struct {
			Exec        string  `json:"exec"`
			Concurrency int     `json:"concurrency"`
			QPS         float64 `json:"qps"`
			P50Ms       float64 `json:"p50_ms"`
			P99Ms       float64 `json:"p99_ms"`
		}{Exec: execs[int(c[0])], Concurrency: int(c[1]), QPS: c[2], P50Ms: 1, P99Ms: 5})
	}
	return rep
}

func TestRunThroughputGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeThroughputReport(t, dir, "old.json", tputReport(
		[3]float64{0, 1, 900}, [3]float64{0, 8, 2000}, [3]float64{0, 64, 2100},
		[3]float64{1, 64, 1500},
	))
	okP := writeThroughputReport(t, dir, "ok.json", tputReport(
		[3]float64{0, 1, 870}, [3]float64{0, 8, 1950}, [3]float64{0, 64, 2050},
		[3]float64{1, 64, 1480},
	))
	badP := writeThroughputReport(t, dir, "bad.json", tputReport(
		[3]float64{0, 1, 880}, [3]float64{0, 8, 1960}, [3]float64{0, 64, 1500},
		[3]float64{1, 64, 1480},
	))
	// Rows matched by (exec, concurrency): the fanout c=64 row must not
	// absorb the auto c=64 regression, and extra/missing rows never fail.
	sparseP := writeThroughputReport(t, dir, "sparse.json", tputReport(
		[3]float64{0, 8, 1990}, [3]float64{0, 64, 2080}, [3]float64{0, 128, 1700},
	))
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("small QPS wiggle should pass: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02, 0.02); err == nil {
		t.Fatal("29% QPS drop at auto c=64 should fail the 10% gate")
	} else if !strings.Contains(err.Error(), "QPS") {
		t.Fatalf("error should name QPS: %v", err)
	}
	if err := run(oldP, sparseP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("added/removed sweep levels should not fail the gate: %v", err)
	}
	benchP := writeReport(t, dir, "bench.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	if err := run(oldP, benchP, 10, 0.02, 0.02); err == nil {
		t.Fatal("comparing a throughput report with a bench report should fail")
	}
}

func writeIngestReport(t *testing.T, dir, name string, rep ingestReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIngestGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeIngestReport(t, dir, "old.json", ingestReport{
		Kind: "ingest", QPS: 5000, WriteRatio: 0.2, Inserts: 800, Deletes: 200, WriteP95Ms: 2.5,
	})
	okP := writeIngestReport(t, dir, "ok.json", ingestReport{
		Kind: "ingest", QPS: 4800, WriteRatio: 0.2, Inserts: 790, Deletes: 195, WriteP95Ms: 3.0,
	})
	slowP := writeIngestReport(t, dir, "slow.json", ingestReport{
		Kind: "ingest", QPS: 4000, WriteRatio: 0.2, Inserts: 640, Deletes: 160, WriteP95Ms: 2.5,
	})
	ratioP := writeIngestReport(t, dir, "ratio.json", ingestReport{
		Kind: "ingest", QPS: 5000, WriteRatio: 0.5, Inserts: 2000, Deletes: 500, WriteP95Ms: 2.5,
	})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("4%% QPS wiggle should pass the 10%% gate: %v", err)
	}
	if err := run(oldP, slowP, 10, 0.02, 0.02); err == nil {
		t.Fatal("20% mixed-QPS regression should fail the 10% gate")
	} else if !strings.Contains(err.Error(), "QPS") {
		t.Fatalf("error should name QPS: %v", err)
	}
	if err := run(oldP, ratioP, 10, 0.02, 0.02); err == nil {
		t.Fatal("write-ratio mismatch should be a usage error")
	} else if !strings.Contains(err.Error(), "ratio") {
		t.Fatalf("error should name the ratio: %v", err)
	}
	// Shape mismatch against a bench report is likewise a usage error.
	benchP := writeReport(t, dir, "bench.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	if err := run(oldP, benchP, 10, 0.02, 0.02); err == nil {
		t.Fatal("comparing an ingest report with a bench report should fail")
	}
}
