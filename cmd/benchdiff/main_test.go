package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLatencyGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1050},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1200},
	}})
	if err := run(oldP, okP, 10, 0.02); err != nil {
		t.Fatalf("5%% slower should pass the 10%% gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02); err == nil {
		t.Fatal("20% slower should fail the 10% gate")
	}
}

func TestRunRecallGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.97}},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.96}},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.90}},
	}})
	goneP := writeReport(t, dir, "gone.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000},
	}})
	if err := run(oldP, okP, 10, 0.02); err != nil {
		t.Fatalf("0.01 absolute drop should pass the 0.02 gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02); err == nil {
		t.Fatal("0.07 absolute drop should fail the 0.02 gate")
	} else if !strings.Contains(err.Error(), "recall") {
		t.Fatalf("error should name recall: %v", err)
	}
	if err := run(oldP, goneP, 10, 0.02); err == nil {
		t.Fatal("vanished recall metric should fail the gate")
	}
	// New benchmarks gaining recall never fail (no baseline to regress from).
	if err := run(goneP, oldP, 10, 0.02); err != nil {
		t.Fatalf("gaining a recall metric should pass: %v", err)
	}
}
