package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLatencyGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1050},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1200},
	}})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("5%% slower should pass the 10%% gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02, 0.02); err == nil {
		t.Fatal("20% slower should fail the 10% gate")
	}
}

func TestRunRecallGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.97}},
	}})
	okP := writeReport(t, dir, "ok.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.96}},
	}})
	badP := writeReport(t, dir, "bad.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000, Metrics: map[string]float64{"recall": 0.90}},
	}})
	goneP := writeReport(t, dir, "gone.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkAnnRecall", NsPerOp: 1000},
	}})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("0.01 absolute drop should pass the 0.02 gate: %v", err)
	}
	if err := run(oldP, badP, 10, 0.02, 0.02); err == nil {
		t.Fatal("0.07 absolute drop should fail the 0.02 gate")
	} else if !strings.Contains(err.Error(), "recall") {
		t.Fatalf("error should name recall: %v", err)
	}
	if err := run(oldP, goneP, 10, 0.02, 0.02); err == nil {
		t.Fatal("vanished recall metric should fail the gate")
	}
	// New benchmarks gaining recall never fail (no baseline to regress from).
	if err := run(goneP, oldP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("gaining a recall metric should pass: %v", err)
	}
}

func writeCacheReport(t *testing.T, dir, name string, rep cacheReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCacheGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeCacheReport(t, dir, "old.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 15000, Speedup: 15, HitRate: 0.95,
	})
	okP := writeCacheReport(t, dir, "ok.json", cacheReport{
		Kind: "cache", BaselineQPS: 990, CachedQPS: 14500, Speedup: 14.6, HitRate: 0.94,
	})
	slowP := writeCacheReport(t, dir, "slow.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 12000, Speedup: 12, HitRate: 0.95,
	})
	coldP := writeCacheReport(t, dir, "cold.json", cacheReport{
		Kind: "cache", BaselineQPS: 1000, CachedQPS: 15000, Speedup: 15, HitRate: 0.80,
	})
	if err := run(oldP, okP, 10, 0.02, 0.02); err != nil {
		t.Fatalf("small QPS/hit-rate wiggle should pass: %v", err)
	}
	if err := run(oldP, slowP, 10, 0.02, 0.02); err == nil {
		t.Fatal("20% cached-QPS regression should fail the 10% gate")
	} else if !strings.Contains(err.Error(), "QPS") {
		t.Fatalf("error should name QPS: %v", err)
	}
	if err := run(oldP, coldP, 10, 0.02, 0.02); err == nil {
		t.Fatal("0.15 hit-rate drop should fail the 0.02 gate")
	} else if !strings.Contains(err.Error(), "hit rate") {
		t.Fatalf("error should name hit rate: %v", err)
	}
	// Shape mismatch is a usage error, not a silent pass.
	benchP := writeReport(t, dir, "bench.json", report{Benchmarks: []benchmark{
		{Name: "BenchmarkQ", NsPerOp: 1000},
	}})
	if err := run(oldP, benchP, 10, 0.02, 0.02); err == nil {
		t.Fatal("comparing a cache report with a bench report should fail")
	}
}
