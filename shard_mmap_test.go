package geosir

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/mmap"
)

// TestShardedMmapEquivalence is the mmap serving equivalence suite:
// over the same seeded random base, a snapshot directory reloaded in
// LoadModeMmap answers byte-identically to the same directory reloaded
// in LoadModeHeap and to the engine that wrote it — for shard counts
// {1, 2, 7}, every mode, several k, and both ANN tiers. Run under
// -race this also proves the mapped sections are data-race-free under
// concurrent fan-out.
func TestShardedMmapEquivalence(t *testing.T) {
	images, queries, sketch := equivBase(t)
	ctx := context.Background()

	for _, shards := range []int{1, 2, 7} {
		orig := buildShardedFrom(t, images, shards)
		dir := filepath.Join(t.TempDir(), "snap")
		if err := orig.SaveDir(dir); err != nil {
			t.Fatalf("shards=%d: SaveDir: %v", shards, err)
		}
		// Every frozen shard must have been written as GSIR3.
		for i := 0; i < shards; i++ {
			info, err := PeekFile(filepath.Join(dir, shardFileName(i)))
			if err != nil {
				t.Fatalf("shards=%d: peek shard %d: %v", shards, i, err)
			}
			if info.FormatName != "GSIR3" {
				t.Fatalf("shards=%d: shard %d written as %s, want GSIR3", shards, i, info.FormatName)
			}
		}

		heap, hrec, err := LoadShardedDirMode(dir, LoadModeHeap)
		if err != nil {
			t.Fatalf("shards=%d: heap load: %v", shards, err)
		}
		if !hrec.Complete() {
			t.Fatalf("shards=%d: heap load incomplete: %+v", shards, hrec)
		}
		mm, mrec, err := LoadShardedDirMode(dir, LoadModeMmap)
		if err != nil {
			t.Fatalf("shards=%d: mmap load: %v", shards, err)
		}
		if !mrec.Complete() {
			t.Fatalf("shards=%d: mmap load incomplete: %+v", shards, mrec)
		}

		mmapActive := mmap.Supported() && mmap.CanCast()
		hst, mst := heap.StorageStats(), mm.StorageStats()
		if hst.LoadMode != "heap" || hst.MappedBytes != 0 {
			t.Fatalf("shards=%d: heap storage stats %+v", shards, hst)
		}
		if mmapActive && (mst.LoadMode != "mmap" || mst.MappedBytes == 0) {
			t.Fatalf("shards=%d: mmap storage stats %+v", shards, mst)
		}

		combos := []struct {
			mode Mode
			ann  AnnMode
		}{
			{ModeAuto, AnnOff}, {ModeExact, AnnOff}, {ModeApproximate, AnnOff},
			{ModeAuto, AnnVerify}, {ModeAuto, AnnApprox}, {ModeSketch, AnnOff},
		}
		engines := []struct {
			name string
			s    Searcher
		}{{"orig", orig}, {"mmap", mm}}
		for _, c := range combos {
			for _, k := range []int{1, 4} {
				qs := queries
				if c.mode == ModeSketch {
					qs = queries[:1] // sketch ignores Query; run once
				}
				for qi, q := range qs {
					req := SearchRequest{Query: q, K: k, Mode: c.mode, Ann: c.ann}
					if c.mode == ModeSketch {
						req = SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch, Ann: c.ann}
					}
					want, werr := heap.Search(ctx, req)
					for _, e := range engines {
						got, gerr := e.s.Search(ctx, req)
						label := e.name
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("shards=%d mode=%v ann=%v k=%d q=%d %s: errors differ: %v vs %v",
								shards, c.mode, c.ann, k, qi, label, werr, gerr)
						}
						if werr != nil {
							continue
						}
						if want.Stats != got.Stats {
							t.Fatalf("shards=%d mode=%v ann=%v k=%d q=%d %s: stats differ\nheap: %+v\n%s: %+v",
								shards, c.mode, c.ann, k, qi, label, want.Stats, label, got.Stats)
						}
						assertMatchesEqual(t, label, want.Matches, got.Matches)
						assertSketchEqual(t, label, want.SketchMatches, got.SketchMatches)
					}
				}
			}
		}
		if err := mm.Close(); err != nil {
			t.Fatalf("shards=%d: close: %v", shards, err)
		}
	}
}
