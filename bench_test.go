package geosir

// Benchmark harness: one benchmark per figure/claim of the paper's
// evaluation (see DESIGN.md §3 for the experiment index) plus the
// ablations DESIGN.md §4 calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure-level series are also printed by cmd/experiments; the benchmarks
// here measure the steady-state cost of each reproduced pipeline and
// report the figure's headline quantity as a custom metric.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/extindex"
	"repro/internal/extstore"
	"repro/internal/geohash"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rangesearch"
	"repro/internal/synth"
)

// The shared fixture is built once per `go test -bench` process.
var (
	benchOnce    sync.Once
	benchFixture *experiments.Fixture
	benchErr     error
)

func sharedFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = 0.01 // 100 images ≈ 5k normalized copies
		benchFixture, benchErr = experiments.BuildFixture(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchFixture
}

// --- Figure 1: similarity criterion discrimination -----------------------

func BenchmarkFig1_Measures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1()
		if !r.AvgPicksB {
			b.Fatal("average measure no longer prefers B")
		}
	}
}

// --- Figure 2: distortion robustness vs the Mehrotra–Gary baseline -------

func BenchmarkFig2_GeoSIRRetrieval(b *testing.B) {
	f := sharedFixture(b)
	rng := rand.New(rand.NewSource(42))
	shapes := f.Base.Shapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := shapes[rng.Intn(len(shapes))]
		q := synth.Distort(rng, src.Poly, 0.02)
		if q.Validate() != nil {
			continue
		}
		if _, _, err := f.Base.Match(q, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_MGRetrieval(b *testing.B) {
	f := sharedFixture(b)
	mg, err := core.NewMGIndex(f.Base.Shapes())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	shapes := f.Base.Shapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := shapes[rng.Intn(len(shapes))]
		q := synth.Distort(rng, src.Poly, 0.02)
		if q.Validate() != nil {
			continue
		}
		if _, err := mg.Match(q, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Query hot path: engine-level retrieval APIs --------------------------

// benchEngine builds a small engine (≈50 images) for the engine-level
// query benchmarks, once per process.
var (
	benchEngOnce sync.Once
	benchEng     *Engine
	benchEngErr  error
)

func sharedEngine(b *testing.B) *Engine {
	b.Helper()
	benchEngOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = 0.005
		f, err := experiments.BuildFixture(cfg)
		if err != nil {
			benchEngErr = err
			return
		}
		eng := New(DefaultOptions())
		for _, img := range f.Images {
			if err := eng.AddImage(img.ID, img.Shapes); err != nil {
				benchEngErr = err
				return
			}
		}
		benchEngErr = eng.Freeze()
		benchEng = eng
	})
	if benchEngErr != nil {
		b.Fatal(benchEngErr)
	}
	return benchEng
}

// benchSketch distorts the shapes of one base image into a query sketch.
func benchSketch(eng *Engine, n int) []Shape {
	rng := rand.New(rand.NewSource(33))
	shapes := eng.Base().Shapes()
	img := shapes[0].Image
	var sketch []Shape
	for _, s := range shapes {
		if s.Image != img || len(sketch) == n {
			continue
		}
		q := synth.Distort(rng, s.Poly, 0.01)
		if q.Validate() != nil {
			q = s.Poly
		}
		sketch = append(sketch, q)
	}
	for len(sketch) < n {
		s := shapes[rng.Intn(len(shapes))]
		q := synth.Distort(rng, s.Poly, 0.01)
		if q.Validate() != nil {
			q = s.Poly
		}
		sketch = append(sketch, q)
	}
	return sketch
}

func BenchmarkFindBySketch(b *testing.B) {
	eng := sharedEngine(b)
	sketch := benchSketch(eng, 4)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.FindBySketchWorkers(sketch, 3, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFindApproximate(b *testing.B) {
	eng := sharedEngine(b)
	rng := rand.New(rand.NewSource(34))
	shapes := eng.Base().Shapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := shapes[rng.Intn(len(shapes))]
		q := synth.Distort(rng, src.Poly, 0.02)
		if q.Validate() != nil {
			continue
		}
		if _, err := eng.FindApproximate(q, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: solving the equal-area hash-curve family ------------------

func BenchmarkFig5_HashCurveSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := geohash.NewFamily(50); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: I/O per query across storage layouts ----------------------

func BenchmarkFig7_IOPerQuery(b *testing.B) {
	f := sharedFixture(b)
	for _, layout := range extstore.Layouts() {
		b.Run(string(layout), func(b *testing.B) {
			var lastIO float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig7(f, 2, 100)
				if err != nil {
					b.Fatal(err)
				}
				lastIO = rows[1].IO[layout] // k = 2
			}
			b.ReportMetric(lastIO, "io/query")
		})
	}
}

// --- Figure 8: buffer-size sweep ------------------------------------------

func BenchmarkFig8_BufferSweep(b *testing.B) {
	f := sharedFixture(b)
	for _, kb := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("buf%dKB", kb), func(b *testing.B) {
			var lastIO float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig8(f, []int{kb})
				if err != nil {
					b.Fatal(err)
				}
				lastIO = rows[0].IO[extstore.LayoutMean]
			}
			b.ReportMetric(lastIO, "io/query")
		})
	}
}

// --- §4 rehash cost --------------------------------------------------------

func BenchmarkLayout_Rehash(b *testing.B) {
	f := sharedFixture(b)
	for _, layout := range extstore.Layouts() {
		b.Run(string(layout), func(b *testing.B) {
			var cmps int
			for i := 0; i < b.N; i++ {
				store, err := extstore.NewStore(f.Records, extstore.LayoutLex, 8)
				if err != nil {
					b.Fatal(err)
				}
				st, err := store.Rehash(layout)
				if err != nil {
					b.Fatal(err)
				}
				cmps = st.Comparisons
			}
			b.ReportMetric(float64(cmps), "comparisons")
		})
	}
}

// --- Figure 10: selectivity law -------------------------------------------

func BenchmarkFig10_Selectivity(b *testing.B) {
	// A star base with Zipf-graded complexity (the Figure 10 domain).
	images := synth.ZipfStarImages(synth.ZipfStarSpec{
		Shapes: 400, MinC: 3, MaxC: 12, Noise: 0.015, Seed: 5,
	})
	opts := core.DefaultOptions()
	opts.Alpha = 0.065
	base := core.NewBase(opts)
	for _, img := range images {
		if _, err := base.AddShape(img.ID, img.Shapes[0]); err != nil {
			b.Fatal(err)
		}
	}
	if err := base.Freeze(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	var matches int
	for i := 0; i < b.N; i++ {
		q := synth.Star(rng, 3+i%10, 0.015)
		ms, _, err := base.SimilarShapes(q, 0.03)
		if err != nil {
			b.Fatal(err)
		}
		matches = len(ms)
	}
	b.ReportMetric(float64(matches), "matches")
}

// --- §2.5: retrieval scaling (polylog claim) ------------------------------

func benchmarkMatchAtScale(b *testing.B, scale float64) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	f, err := experiments.BuildFixture(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		q := f.Queries[i%len(f.Queries)]
		_, st, err := f.Base.Match(q, 1)
		if err != nil {
			b.Fatal(err)
		}
		iters = st.Iterations
	}
	b.ReportMetric(float64(f.Base.NumVertices()), "base-vertices")
	b.ReportMetric(float64(iters), "fattenings")
}

func BenchmarkMatch_Scaling_50images(b *testing.B)  { benchmarkMatchAtScale(b, 0.005) }
func BenchmarkMatch_Scaling_100images(b *testing.B) { benchmarkMatchAtScale(b, 0.01) }
func BenchmarkMatch_Scaling_200images(b *testing.B) { benchmarkMatchAtScale(b, 0.02) }

// --- §3: geometric hashing -------------------------------------------------

func BenchmarkGeoHash_Characteristic(b *testing.B) {
	f := sharedFixture(b)
	shapes := f.Base.Shapes()
	entries := make([]core.Entry, 0, len(shapes))
	for _, s := range shapes {
		if e, err := core.NormalizeCanonical(s.Poly); err == nil {
			entries = append(entries, e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		_ = f.Family.Characteristic(e.Poly.Pts)
	}
}

func BenchmarkGeoHash_Lookup(b *testing.B) {
	f := sharedFixture(b)
	table := geohash.NewTable(f.Family)
	for _, s := range f.Base.Shapes() {
		e, err := core.NormalizeCanonical(s.Poly)
		if err != nil {
			continue
		}
		if err := table.Insert(s.ID, f.Family.Characteristic(e.Poly.Pts)); err != nil {
			b.Fatal(err)
		}
	}
	quads := make([]geohash.Quadruple, 64)
	rng := rand.New(rand.NewSource(4))
	for i := range quads {
		s := f.Base.Shape(rng.Intn(f.Base.NumShapes()))
		e, _ := core.NormalizeCanonical(s.Poly)
		quads[i] = f.Family.Characteristic(e.Poly.Pts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Lookup(quads[i%len(quads)], 1)
	}
}

// --- §5.4: query plans -------------------------------------------------------

func BenchmarkQueryPlans(b *testing.B) {
	f := sharedFixture(b)
	var checks int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Plans(f)
		if err != nil {
			b.Fatal(err)
		}
		checks = rows[0].PlannedChecks
	}
	b.ReportMetric(float64(checks), "checks")
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

func BenchmarkAblation_RangeBackend(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64()*1.6-0.8)
	}
	tris := make([]geom.Triangle, 64)
	for i := range tris {
		c := geom.Pt(rng.Float64(), rng.Float64()*1.6-0.8)
		tris[i] = geom.Tri(c, c.Add(geom.Pt(0.05, 0)), c.Add(geom.Pt(0, 0.05)))
	}
	for _, kind := range []rangesearch.Kind{rangesearch.KindBrute, rangesearch.KindKDTree, rangesearch.KindLayered} {
		backend := rangesearch.New(kind, pts)
		b.Run(string(kind), func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				backend.ReportTriangle(tris[i%len(tris)], func(int) { n++ })
			}
			_ = n
		})
	}
}

func BenchmarkAblation_AlphaBeta(b *testing.B) {
	for _, cfg := range []struct {
		alpha, beta float64
	}{
		{0.0, 0.25}, {0.065, 0.25}, {0.065, 0.1}, {0.065, 0.4}, {0.15, 0.25},
	} {
		name := fmt.Sprintf("alpha%.3f_beta%.2f", cfg.alpha, cfg.beta)
		b.Run(name, func(b *testing.B) {
			c := experiments.DefaultConfig()
			c.Scale = 0.005
			c.CoreOpts.Alpha = cfg.alpha
			c.CoreOpts.Beta = cfg.beta
			f, err := experiments.BuildFixture(c)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.Base.Match(f.Queries[i%len(f.Queries)], 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(f.Base.NumEntries()), "copies")
		})
	}
}

func BenchmarkAblation_Growth(b *testing.B) {
	for _, g := range []float64{1.3, 2, 3} {
		b.Run(fmt.Sprintf("growth%.1f", g), func(b *testing.B) {
			c := experiments.DefaultConfig()
			c.Scale = 0.005
			c.CoreOpts.GrowthFactor = g
			f, err := experiments.BuildFixture(c)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				_, st, err := f.Base.Match(f.Queries[i%len(f.Queries)], 1)
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "fattenings")
		})
	}
}

func BenchmarkAblation_Sampling(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	a := synth.Star(rng, 8, 0.02)
	c := synth.Star(rng, 8, 0.02)
	for _, samples := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("samples%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.AvgMinDistSym(a, c, samples)
			}
		})
	}
}

// --- Selectivity estimation -----------------------------------------------

func BenchmarkSelectivity_SignificantVertices(b *testing.B) {
	f := sharedFixture(b)
	for i := 0; i < b.N; i++ {
		_ = query.SignificantVertices(f.Queries[i%len(f.Queries)])
	}
}

// --- External-memory index (§4 auxiliary structures) ------------------------

func BenchmarkExtIndex_TriangleQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	pts := make([]geom.Point, 50000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64()*1.6-0.8)
	}
	tree, err := extindex.Build(pts, 64)
	if err != nil {
		b.Fatal(err)
	}
	tris := make([]geom.Triangle, 64)
	for i := range tris {
		c := geom.Pt(rng.Float64(), rng.Float64()*1.6-0.8)
		tris[i] = geom.Tri(c, c.Add(geom.Pt(0.03, 0)), c.Add(geom.Pt(0, 0.03)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.CountTriangle(tris[i%len(tris)]); err != nil {
			b.Fatal(err)
		}
	}
	st := tree.Stats()
	if st.PoolMisses+st.PoolHits > 0 {
		b.ReportMetric(float64(st.PoolMisses)/float64(b.N), "block-reads/query")
	}
}
