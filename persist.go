package geosir

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Save / Load persist an engine's image base. The format stores the
// options and the raw shapes; indices (normalized copies, range
// structures, hash table) are deterministic functions of those, so Load
// rebuilds them with Freeze and the reloaded engine answers every query
// identically.
//
// Three stream formats exist. GSIR1 is the legacy format: a bare
// concatenation of options and shapes with no integrity protection.
// GSIR2 is the portable format: the same payload split into
// length-prefixed sections (one for the options, one per image), each
// followed by a CRC32 of its payload, so truncation and corruption are
// detected instead of silently loading a skewed image base, and
// LoadPartial can salvage every image whose section still verifies.
// GSIR3 (persist_v3.go) additionally serializes the frozen index
// itself as aligned, checksummed array sections, so opening a snapshot
// is assembly instead of a geometry rebuild — and on capable
// platforms the sections are mmap'd and used in place (LoadFileMmap).
// Save writes GSIR2; Load reads all three.

// Format identifies a snapshot stream format.
type Format int

const (
	// FormatGSIR1 is the legacy unchecksummed format (read + write kept
	// for compatibility).
	FormatGSIR1 Format = 1
	// FormatGSIR2 is the portable checksummed, section-framed format.
	FormatGSIR2 Format = 2
	// FormatGSIR3 is the mmap-friendly frozen-shard format: raw shapes
	// plus every derived query-time structure as aligned array sections.
	FormatGSIR3 Format = 3
)

const (
	magicGSIR1 = "GSIR1\n"
	magicGSIR2 = "GSIR2\n"
	magicLen   = 6
)

// maxCount bounds image/shape/vertex counts against corrupt headers.
const maxCount = 1 << 28

// maxHashCurves bounds the persisted hash-curve count (default is 50;
// building a family is linear in the count, so a corrupt value must not
// be allowed to stall Load for minutes).
const maxHashCurves = 1 << 16

// freezeLoaded freezes a just-decoded engine. An engine with no shapes
// (an empty snapshot, or a salvage that dropped everything) is returned
// unfrozen because the core index rejects empty bases; it is still a
// valid engine that can accept AddImage and be frozen later.
func freezeLoaded(eng *Engine) error {
	if eng.NumShapes() == 0 {
		return nil
	}
	return eng.Freeze()
}

// Save writes the engine's configuration and image base to w in the
// current (GSIR2, checksummed) format. The engine may be saved before or
// after Freeze. The encoding is canonical: saving, loading, and saving
// again reproduces the stream byte for byte.
func (e *Engine) Save(w io.Writer) error { return e.SaveAs(w, FormatGSIR2) }

// SaveAs writes the engine in the requested stream format. Use
// FormatGSIR1 only to produce snapshots for pre-GSIR2 readers; it has no
// checksums.
func (e *Engine) SaveAs(w io.Writer, f Format) error {
	switch f {
	case FormatGSIR1:
		return e.saveGSIR1(w)
	case FormatGSIR2:
		return e.saveGSIR2(w)
	case FormatGSIR3:
		return e.saveGSIR3(w)
	default:
		return fmt.Errorf("geosir: unknown snapshot format %d", f)
	}
}

// Load reads an engine saved with Save or SaveAs (either format is
// negotiated from the magic), rebuilds every index, and returns it frozen
// (ready to query). Any truncation, framing damage, or (for GSIR2
// streams) checksum mismatch fails the load; use LoadPartial to salvage
// what survives from a damaged snapshot.
func Load(r io.Reader) (*Engine, error) {
	cr := &countReader{r: r}
	magic, err := readMagic(cr)
	if err != nil {
		return nil, err
	}
	switch magic {
	case magicGSIR1:
		return loadGSIR1(cr)
	case magicGSIR2:
		return loadGSIR2(cr)
	case magicGSIR3:
		data, err := readAllWithMagic(magic, cr)
		if err != nil {
			return nil, err
		}
		return loadGSIR3Bytes(data, false)
	}
	return nil, fmt.Errorf("geosir: bad magic %q", magic)
}

// DroppedImage describes one image section that LoadPartial could not
// recover from a damaged snapshot.
type DroppedImage struct {
	// Section is the 1-based index of the image section in the stream.
	Section int
	// ImageID is the image id parsed from the damaged section on a
	// best-effort basis, or -1 when the bytes are too mangled to trust.
	ImageID int
	// Offset is the byte offset of the section's length prefix in the
	// stream (0 for GSIR1 streams, which have no section framing).
	Offset int64
	// Err records why the section was dropped.
	Err error
}

// Recovery reports what LoadPartial salvaged and what it had to drop.
type Recovery struct {
	// Format names the stream format that was read ("GSIR1" or "GSIR2").
	Format string
	// ImagesExpected is the image count the snapshot header declared.
	ImagesExpected int
	// ImagesLoaded is the number of images recovered into the engine.
	ImagesLoaded int
	// Dropped lists every image section that was reached but failed
	// verification or parsing, in stream order. Sections past a framing
	// loss are never reached and are counted in ImagesUnread instead
	// (a corrupt header can claim 2^28 images; enumerating an unreadable
	// tail individually would let a one-byte flip cost gigabytes).
	Dropped []DroppedImage
	// ImagesUnread counts the declared image sections that were never
	// reached because framing was lost earlier in the stream.
	ImagesUnread int
	// Truncated reports that section framing was lost (truncation or a
	// mangled length prefix) before the declared image count was reached.
	Truncated bool
	// AuxDropped counts declared auxiliary sections (derived data such
	// as the ANN signatures) that failed verification or were never
	// reached. The engine is unaffected — Freeze rebuilds derived
	// structures deterministically — but the snapshot was damaged.
	AuxDropped int
}

// Complete reports whether the snapshot was recovered in full — in that
// case the engine is identical to a plain Load.
func (rec *Recovery) Complete() bool {
	return rec != nil && len(rec.Dropped) == 0 && rec.ImagesUnread == 0 && !rec.Truncated &&
		rec.AuxDropped == 0
}

// LoadPartial reads a possibly damaged snapshot and salvages every image
// whose bytes still verify, returning the frozen engine plus a Recovery
// describing exactly what was dropped. For GSIR2 streams each image
// section is independently CRC-protected, so a single corrupted image
// costs only that image; for GSIR1 streams (no framing) the undamaged
// prefix is salvaged. The options section/header must be intact — without
// it no engine can be constructed and an error is returned.
func LoadPartial(r io.Reader) (*Engine, *Recovery, error) {
	cr := &countReader{r: r}
	magic, err := readMagic(cr)
	if err != nil {
		return nil, nil, err
	}
	switch magic {
	case magicGSIR1:
		return loadPartialGSIR1(cr)
	case magicGSIR2:
		return loadPartialGSIR2(cr)
	case magicGSIR3:
		data, err := readAllWithMagic(magic, cr)
		if err != nil {
			return nil, nil, err
		}
		return loadPartialGSIR3Bytes(data)
	}
	return nil, nil, fmt.Errorf("geosir: bad magic %q", magic)
}

// SaveFile atomically saves the engine to a file: the snapshot is written
// to a temporary file in the target directory, fsynced, renamed over the
// destination, and the directory is fsynced. A crash (or write error) at
// any point leaves the previous snapshot intact; the new snapshot becomes
// visible only as a whole.
func (e *Engine) SaveFile(path string) error {
	return e.saveFileAtomic(path, nil)
}

// saveFileAtomic implements SaveFile. The wrap hook lets tests interpose
// a fault-injecting writer between Save and the temp file to exercise
// every crash point of the write path.
func (e *Engine) saveFileAtomic(path string, wrap func(io.Writer) io.Writer) error {
	return saveAtomic(path, e.Save, wrap)
}

// saveAtomic writes whatever save produces to path with the
// temp-fsync-rename-dirsync discipline shared by every snapshot format.
func saveAtomic(path string, save func(io.Writer) error, wrap func(io.Writer) io.Writer) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("geosir: creating temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(tmp)
	}
	if err := save(w); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("geosir: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("geosir: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("geosir: publishing snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename is durable. Best-effort: some
// filesystems and platforms reject fsync on directories, and by this
// point the rename has already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// SnapshotInfo is the cheap-to-read header metadata of a snapshot: what
// Peek returns without decoding (or allocating for) any shape data. The
// serving layer uses it to validate a reload target and to report the
// active snapshot in its status endpoints.
type SnapshotInfo struct {
	// Format is the stream format the snapshot was written in.
	Format Format
	// FormatName is the on-disk magic without the newline ("GSIR1"/"GSIR2").
	FormatName string
	// Options are the engine options the snapshot declares.
	Options Options
	// Images is the declared image count.
	Images int
	// Shapes is the declared shape count (GSIR3 only, else 0 — earlier
	// formats do not record it in the header).
	Shapes int
	// Sections is the section-table entry count (GSIR3 only, else 0).
	Sections int
	// Size is the snapshot size in bytes (PeekFile only, else 0).
	Size int64
}

// Peek reads only the snapshot header — magic plus the options section —
// and returns its metadata. For GSIR2 streams the options section's CRC
// is verified, so a Peek that succeeds on a GSIR2 snapshot also proves
// the header is intact; shape sections are not read.
func Peek(r io.Reader) (SnapshotInfo, error) {
	magic, err := readMagic(r)
	if err != nil {
		return SnapshotInfo{}, err
	}
	switch magic {
	case magicGSIR1:
		opts, nimg, err := newV1Reader(r).readOptions()
		if err != nil {
			return SnapshotInfo{}, err
		}
		return SnapshotInfo{Format: FormatGSIR1, FormatName: "GSIR1", Options: opts, Images: int(nimg)}, nil
	case magicGSIR2:
		opts, nimg, _, err := readOptionsSection(r)
		if err != nil {
			return SnapshotInfo{}, err
		}
		return SnapshotInfo{Format: FormatGSIR2, FormatName: "GSIR2", Options: opts, Images: nimg}, nil
	case magicGSIR3:
		return peekGSIR3(r)
	}
	return SnapshotInfo{}, fmt.Errorf("geosir: bad magic %q", magic)
}

// PeekFile runs Peek on a file and fills in the file size.
func PeekFile(path string) (SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer f.Close()
	info, err := Peek(f)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if st, err := f.Stat(); err == nil {
		info.Size = st.Size()
	}
	return info, nil
}

// LoadFile loads an engine from a file.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadPartialFile runs LoadPartial on a file.
func LoadPartialFile(path string) (*Engine, *Recovery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadPartial(f)
}

// countReader tracks the byte offset of an io.Reader so recovery reports
// can point at the damaged section.
type countReader struct {
	r   io.Reader
	off int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

func readMagic(r io.Reader) (string, error) {
	buf := make([]byte, magicLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("geosir: reading header: %w", err)
	}
	return string(buf), nil
}

// readCapped reads exactly n bytes, growing the buffer in bounded chunks
// so a corrupt length field cannot force a huge up-front allocation: the
// allocation never outruns the bytes the stream actually supplies.
func readCapped(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
