package geosir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Save / Load persist an engine's image base. The format stores the
// options and the raw shapes; indices (normalized copies, range
// structures, hash table) are deterministic functions of those, so Load
// rebuilds them with Freeze and the reloaded engine answers every query
// identically.

const persistMagic = "GSIR1\n"

// Save writes the engine's configuration and image base to w. The engine
// may be saved before or after Freeze.
func (e *Engine) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	writeF := func(v float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	writeU := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	for _, v := range []float64{e.opts.Alpha, e.opts.Beta, e.opts.Tau, e.opts.AngleTol} {
		if err := writeF(v); err != nil {
			return err
		}
	}
	if err := writeU(uint32(e.opts.HashCurves)); err != nil {
		return err
	}

	// Group shapes by image, preserving image ids.
	base := e.db.Base()
	byImage := make(map[int][]Shape)
	var order []int
	for _, s := range base.Shapes() {
		if _, seen := byImage[s.Image]; !seen {
			order = append(order, s.Image)
		}
		byImage[s.Image] = append(byImage[s.Image], s.Poly)
	}
	if err := writeU(uint32(len(order))); err != nil {
		return err
	}
	for _, img := range order {
		if err := writeU(uint32(img)); err != nil {
			return err
		}
		shapes := byImage[img]
		if err := writeU(uint32(len(shapes))); err != nil {
			return err
		}
		for _, sh := range shapes {
			flag := uint32(0)
			if sh.Closed {
				flag = 1
			}
			if err := writeU(flag); err != nil {
				return err
			}
			if err := writeU(uint32(len(sh.Pts))); err != nil {
				return err
			}
			for _, p := range sh.Pts {
				if err := writeF(p.X); err != nil {
					return err
				}
				if err := writeF(p.Y); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads an engine saved with Save, rebuilds every index, and
// returns it frozen (ready to query).
func Load(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("geosir: reading header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("geosir: bad magic %q", magic)
	}
	readF := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	readU := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}

	var opts Options
	var err error
	if opts.Alpha, err = readF(); err != nil {
		return nil, fmt.Errorf("geosir: options: %w", err)
	}
	if opts.Beta, err = readF(); err != nil {
		return nil, err
	}
	if opts.Tau, err = readF(); err != nil {
		return nil, err
	}
	if opts.AngleTol, err = readF(); err != nil {
		return nil, err
	}
	hc, err := readU()
	if err != nil {
		return nil, err
	}
	opts.HashCurves = int(hc)

	eng := New(opts)
	nimg, err := readU()
	if err != nil {
		return nil, err
	}
	const maxCount = 1 << 28 // sanity bound against corrupt headers
	if nimg > maxCount {
		return nil, fmt.Errorf("geosir: implausible image count %d", nimg)
	}
	for i := uint32(0); i < nimg; i++ {
		imgID, err := readU()
		if err != nil {
			return nil, err
		}
		nsh, err := readU()
		if err != nil {
			return nil, err
		}
		if nsh > maxCount {
			return nil, fmt.Errorf("geosir: implausible shape count %d", nsh)
		}
		shapes := make([]Shape, 0, nsh)
		for s := uint32(0); s < nsh; s++ {
			flag, err := readU()
			if err != nil {
				return nil, err
			}
			nv, err := readU()
			if err != nil {
				return nil, err
			}
			if nv > maxCount {
				return nil, fmt.Errorf("geosir: implausible vertex count %d", nv)
			}
			pts := make([]Point, nv)
			for v := uint32(0); v < nv; v++ {
				x, err := readF()
				if err != nil {
					return nil, err
				}
				y, err := readF()
				if err != nil {
					return nil, err
				}
				pts[v] = Pt(x, y)
			}
			shapes = append(shapes, Shape{Pts: pts, Closed: flag == 1})
		}
		if err := eng.AddImage(int(imgID), shapes); err != nil {
			return nil, fmt.Errorf("geosir: image %d: %w", imgID, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		return nil, err
	}
	return eng, nil
}

// SaveFile saves the engine to a file.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads an engine from a file.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
