package geosir

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
)

// gsir3Bytes returns the canonical GSIR3 encoding of eng.
func gsir3Bytes(t *testing.T, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.SaveAs(&buf, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGSIR3SaveAtomicUnderWriteFaults kills the GSIR3 writer at every
// grid offset and checks the previous snapshot survives byte-identical,
// loadable, and without temp-file litter — the same guarantee the GSIR2
// atomic writer gives, now through the section writer.
func TestGSIR3SaveAtomicUnderWriteFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.gsir3")
	old := buildEngine(t)
	if err := old.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	prior, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	next := altEngine(t)
	if err := next.Freeze(); err != nil {
		t.Fatal(err)
	}
	size := len(gsir3Bytes(t, next))
	for _, off := range faultOffsets(size) {
		err := next.saveFileAtomicAs(path, FormatGSIR3, func(w io.Writer) io.Writer {
			return iofault.FailWriter(w, int64(off))
		})
		if !errors.Is(err, iofault.ErrInjected) {
			t.Fatalf("offset %d: save with injected fault returned %v", off, err)
		}
		cur, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("offset %d: prior snapshot unreadable: %v", off, err)
		}
		if !bytes.Equal(cur, prior) {
			t.Fatalf("offset %d: prior snapshot modified by failed save", off)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			var names []string
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("offset %d: temp litter left behind: %v", off, names)
		}
	}
	// The prior snapshot must still load — in both modes.
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("prior snapshot no longer loads: %v", err)
	}
	// A clean save finally replaces it.
	if err := next.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, gsir3Bytes(t, next)) {
		t.Fatal("clean save did not publish the new snapshot")
	}
}

// TestGSIR3TornWriteDetected models the failure rename-based atomicity
// cannot prevent: the writer lies about success and publishes a
// truncated GSIR3 file. The section table's exact-coverage rule must
// catch every cut — strict Load always fails, and LoadPartial either
// refuses outright or salvages with the loss reported. Never a silently
// smaller or different base.
func TestGSIR3TornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.gsir3")
	eng := buildEngine(t)
	full := gsir3Bytes(t, eng)
	for _, off := range faultOffsets(len(full)) {
		err := eng.saveFileAtomicAs(path, FormatGSIR3, func(w io.Writer) io.Writer {
			return iofault.TruncWriter(w, int64(off))
		})
		if err != nil {
			t.Fatalf("offset %d: torn save surfaced an error: %v", off, err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("offset %d: truncated GSIR3 snapshot loaded without error", off)
		}
		if _, err := LoadFileMmap(path); err == nil {
			t.Fatalf("offset %d: truncated GSIR3 snapshot mmap-loaded without error", off)
		}
		eng2, rec, err := LoadPartialFile(path)
		if err != nil {
			continue // refused outright: detection, not silence
		}
		if rec.Complete() {
			t.Fatalf("offset %d: truncated snapshot reported complete", off)
		}
		if eng2.NumImages() != rec.ImagesLoaded {
			t.Fatalf("offset %d: engine has %d images, report says %d",
				off, eng2.NumImages(), rec.ImagesLoaded)
		}
	}
}
