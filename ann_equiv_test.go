package geosir

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// searcher is the engine surface the ANN equivalence suite needs; both
// Engine and ShardedEngine satisfy it.
type searcher interface {
	Search(ctx context.Context, req SearchRequest) (*SearchResponse, error)
	NumShapes() int
}

// TestAnnVerifyEquivalence is the property the verify-mode contract
// rests on: with Ann set to AnnVerify the candidate tier may only
// reorder work inside the exact kernel, so Search must return
// byte-identical matches and ordering to the same request with the tier
// off — on the single Engine and on ShardedEngine at shard counts
// {1, 2, 7}, for every mode, k ∈ {0, 1, 3, many}, and the sketch path.
// ModeExact with AnnApprox degrades to verify (the mode's exactness
// contract wins), so it is held to the same identity. Stats are
// deliberately not compared: UsedANN and the probe counters legitimately
// differ. Run under -race this also exercises the fan-out concurrency.
func TestAnnVerifyEquivalence(t *testing.T) {
	images, queries, sketch := equivBase(t)
	ctx := context.Background()

	type namedEngine struct {
		name string
		eng  searcher
	}
	engines := []namedEngine{{"single", buildSingle(t, images)}}
	for _, shards := range []int{1, 2, 7} {
		engines = append(engines, namedEngine{fmt.Sprintf("sharded-%d", shards), buildShardedFrom(t, images, shards)})
	}

	for _, e := range engines {
		many := e.eng.NumShapes() + 5

		// k = 0 fails identically with and without the tier.
		_, errOff := e.eng.Search(ctx, SearchRequest{Query: queries[0], K: 0})
		_, errOn := e.eng.Search(ctx, SearchRequest{Query: queries[0], K: 0, Ann: AnnVerify})
		if !errors.Is(errOff, ErrBadK) || !errors.Is(errOn, ErrBadK) {
			t.Fatalf("%s: k=0 errors diverge: off %v, verify %v", e.name, errOff, errOn)
		}

		for _, k := range []int{1, 3, many} {
			for qi, q := range queries {
				for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
					want, err := e.eng.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode})
					if err != nil {
						t.Fatalf("%s q%d k=%d %v off: %v", e.name, qi, k, mode, err)
					}
					got, err := e.eng.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode, Ann: AnnVerify})
					if err != nil {
						t.Fatalf("%s q%d k=%d %v verify: %v", e.name, qi, k, mode, err)
					}
					assertMatchesEqual(t, e.name+"/"+mode.String()+"/verify", want.Matches, got.Matches)
					if mode == ModeExact {
						got, err = e.eng.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode, Ann: AnnApprox})
						if err != nil {
							t.Fatalf("%s q%d k=%d exact approx: %v", e.name, qi, k, err)
						}
						assertMatchesEqual(t, e.name+"/exact/approx-degraded", want.Matches, got.Matches)
					}
				}
			}
			want, err := e.eng.Search(ctx, SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch})
			if err != nil {
				t.Fatalf("%s sketch k=%d off: %v", e.name, k, err)
			}
			got, err := e.eng.Search(ctx, SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch, Ann: AnnVerify})
			if err != nil {
				t.Fatalf("%s sketch k=%d verify: %v", e.name, k, err)
			}
			assertSketchEqual(t, e.name+"/sketch/verify", want.SketchMatches, got.SketchMatches)
		}
	}
}

// annRecallBase builds the deterministic recall fixture: a seeded
// paper-statistics base and distorted-copy queries whose true top-k is
// taken from the exact engine.
func annRecallBase(t *testing.T) ([]synth.Image, []Shape) {
	t.Helper()
	spec := synth.PaperSpec(0.02, 97)
	spec.Images = 200
	images := synth.GenerateBase(spec)
	queries := synth.Queries(rand.New(rand.NewSource(101)), images, 24, 0.01)
	for i, q := range queries {
		if q.Validate() != nil {
			t.Fatalf("query %d invalid", i)
		}
	}
	return images, queries
}

// recallAtK runs every query through exact search (ground truth) and
// the ANN-approximate path, and returns the mean fraction of true top-k
// shape ids the approximate result recovered.
func recallAtK(t *testing.T, eng searcher, queries []Shape, k int) float64 {
	t.Helper()
	ctx := context.Background()
	var sum float64
	for qi, q := range queries {
		truth, err := eng.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeExact})
		if err != nil {
			t.Fatalf("exact q%d: %v", qi, err)
		}
		approx, err := eng.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeAuto, Ann: AnnApprox})
		if err != nil {
			t.Fatalf("approx q%d: %v", qi, err)
		}
		if !approx.Stats.UsedANN {
			t.Fatalf("approx q%d: ANN tier did not engage", qi)
		}
		if len(truth.Matches) == 0 {
			continue
		}
		want := make(map[int]bool, len(truth.Matches))
		for _, m := range truth.Matches {
			want[m.ShapeID] = true
		}
		hit := 0
		for _, m := range approx.Matches {
			if want[m.ShapeID] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(truth.Matches))
	}
	return sum / float64(len(queries))
}

// TestAnnApproxRecallFloor pins approximate-mode quality on a seeded
// base: everything is deterministic (generator seeds, MinHash seed,
// probe floors), so the measured recall is a constant of the code and a
// drop below the floor is a real regression, not flake. The floor is
// deliberately below the measured value to leave headroom for benign
// parameter retunes; the full recall/speedup tradeoff is tracked in
// BENCH_ann.json.
func TestAnnApproxRecallFloor(t *testing.T) {
	images, queries := annRecallBase(t)
	const k = 5
	const floor = 0.90

	single := buildSingle(t, images)
	got := recallAtK(t, single, queries, k)
	t.Logf("single-engine recall@%d = %.4f", k, got)
	if got < floor {
		t.Fatalf("single-engine recall@%d = %.4f, want >= %.2f", k, got, floor)
	}

	// Sharded approximate search applies the per-shard probe floor in
	// every shard, so its candidate union is at least as wide as the
	// single engine's: recall must not fall below the same floor.
	se := buildShardedFrom(t, images, 3)
	got = recallAtK(t, se, queries, k)
	t.Logf("sharded recall@%d = %.4f", k, got)
	if got < floor {
		t.Fatalf("sharded recall@%d = %.4f, want >= %.2f", k, got, floor)
	}
}
