package geosir

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/sched"
)

// TestExecEquivalence is the suite the scheduler's exactness claim
// rests on: the planned fan-out width changes only how fast an answer
// arrives, never the answer. Over the same seeded random base, a
// ShardedEngine must return byte-identical matches and ordering under
// ExecSequential, ExecFanout, a capped ExecFanout, and ExecAuto — for
// shard counts {1, 2, 7}, every mode, k ∈ {1, many}, and every ann
// mode. Sequential runs keep the SharedBound cross-shard pruning (its
// creation does not depend on the width), so this also pins down that a
// width-1 walk under the shared bound is admissible. Run under -race
// this exercises the fan-out concurrency against the inline path.
func TestExecEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("exec equivalence suite is deliberately exhaustive; skipped in -short")
	}
	images, queries, sketch := equivBase(t)
	ctx := context.Background()

	variants := []struct {
		name string
		set  func(*SearchRequest)
	}{
		{"sequential", func(r *SearchRequest) { r.Exec = ExecSequential }},
		{"fanout-cap2", func(r *SearchRequest) { r.Exec = ExecFanout; r.MaxWorkers = 2 }},
		{"auto", func(r *SearchRequest) { r.Exec = ExecAuto }},
		{"workers-alias", func(r *SearchRequest) { r.Workers = 3 }},
	}

	for _, shards := range []int{1, 2, 7} {
		se := buildShardedFrom(t, images, shards)
		many := se.NumShapes() + 5
		for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
			for _, ann := range []AnnMode{AnnOff, AnnVerify, AnnApprox} {
				for _, k := range []int{1, many} {
					for qi, q := range queries[:2] {
						base := SearchRequest{Query: q, K: k, Mode: mode, Ann: ann, Exec: ExecFanout}
						want, err := se.Search(ctx, base)
						if err != nil {
							t.Fatalf("shards=%d mode=%v ann=%d k=%d q=%d fanout: %v", shards, mode, ann, k, qi, err)
						}
						for _, v := range variants {
							req := SearchRequest{Query: q, K: k, Mode: mode, Ann: ann}
							v.set(&req)
							got, err := se.Search(ctx, req)
							if err != nil {
								t.Fatalf("shards=%d mode=%v ann=%d k=%d q=%d %s: %v", shards, mode, ann, k, qi, v.name, err)
							}
							label := fmt.Sprintf("shards=%d mode=%v ann=%d k=%d q=%d %s", shards, mode, ann, k, qi, v.name)
							assertMatchesEqual(t, label, want.Matches, got.Matches)
						}
					}
				}
			}
		}
		for _, k := range []int{1, 5} {
			base := SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch, Exec: ExecFanout}
			want, err := se.Search(ctx, base)
			if err != nil {
				t.Fatalf("shards=%d sketch k=%d fanout: %v", shards, k, err)
			}
			for _, v := range variants {
				req := SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch}
				v.set(&req)
				got, err := se.Search(ctx, req)
				if err != nil {
					t.Fatalf("shards=%d sketch k=%d %s: %v", shards, k, v.name, err)
				}
				assertSketchEqual(t, fmt.Sprintf("shards=%d sketch k=%d %s", shards, k, v.name), want.SketchMatches, got.SketchMatches)
			}
		}
	}

	// The Engine-side sketch fan-out obeys the same identity.
	single := buildSingle(t, images)
	want, err := single.Search(ctx, SearchRequest{Sketch: sketch, K: 5, Mode: ModeSketch, Exec: ExecFanout})
	if err != nil {
		t.Fatalf("single sketch fanout: %v", err)
	}
	for _, v := range variants {
		req := SearchRequest{Sketch: sketch, K: 5, Mode: ModeSketch}
		v.set(&req)
		got, err := single.Search(ctx, req)
		if err != nil {
			t.Fatalf("single sketch %s: %v", v.name, err)
		}
		assertSketchEqual(t, "single sketch "+v.name, want.SketchMatches, got.SketchMatches)
	}
}

// TestExecAutoLoadGauge proves the load signal steers the plan: an idle
// request over several shards fans out, while a request arriving with
// the engine saturated is planned sequentially — and both return the
// same matches.
func TestExecAutoLoadGauge(t *testing.T) {
	images, queries, _ := equivBase(t)
	se := buildShardedFrom(t, images, 4)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()
	req := SearchRequest{Query: queries[0], K: 3, Mode: ModeExact}

	before := se.SchedStats()
	if before.InFlight != 0 {
		t.Fatalf("idle gauge = %d, want 0", before.InFlight)
	}
	idle, err := se.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	after := se.SchedStats()
	if after.PlansFanout != before.PlansFanout+1 || after.PlansSequential != before.PlansSequential {
		t.Fatalf("idle request planned (%d fanout, %d sequential) → (%d, %d); want a fan-out plan",
			before.PlansFanout, before.PlansSequential, after.PlansFanout, after.PlansSequential)
	}

	// Saturate the gauge as 64 concurrent requests would, then search.
	releases := make([]func(), 64)
	for i := range releases {
		releases[i] = se.sched.Enter()
	}
	before = se.SchedStats()
	if before.InFlight != 64 {
		t.Fatalf("held gauge = %d, want 64", before.InFlight)
	}
	loaded, err := se.Search(ctx, req)
	for _, release := range releases {
		release()
	}
	if err != nil {
		t.Fatal(err)
	}
	after = se.SchedStats()
	if after.PlansSequential != before.PlansSequential+1 || after.PlansFanout != before.PlansFanout {
		t.Fatalf("loaded request planned (%d fanout, %d sequential) → (%d, %d); want a sequential plan",
			before.PlansFanout, before.PlansSequential, after.PlansFanout, after.PlansSequential)
	}
	if got := se.SchedStats().InFlight; got != 0 {
		t.Fatalf("gauge after releases = %d, want 0", got)
	}
	assertMatchesEqual(t, "idle vs loaded", idle.Matches, loaded.Matches)
}

// TestExecPlanWorkersAlias pins the deprecated-alias resolution: a bare
// positive Workers reproduces the old explicit-width behavior (forced
// fan-out capped at Workers), while any new-API knob wins over it.
func TestExecPlanWorkersAlias(t *testing.T) {
	cases := []struct {
		name    string
		req     SearchRequest
		wantPol sched.Policy
		wantCap int
	}{
		{"zero request", SearchRequest{}, sched.Auto, 0},
		{"legacy workers", SearchRequest{Workers: 3}, sched.Fanout, 3},
		{"legacy non-positive", SearchRequest{Workers: -1}, sched.Auto, 0},
		{"exec wins over alias", SearchRequest{Workers: 3, Exec: ExecSequential}, sched.Sequential, 0},
		{"maxworkers wins over alias", SearchRequest{Workers: 3, MaxWorkers: 2}, sched.Auto, 2},
		{"fanout capped", SearchRequest{Exec: ExecFanout, MaxWorkers: 5}, sched.Fanout, 5},
		{"sequential", SearchRequest{Exec: ExecSequential, MaxWorkers: 9}, sched.Sequential, 9},
	}
	for _, tc := range cases {
		pol, maxw := tc.req.execPlan()
		if pol != tc.wantPol || maxw != tc.wantCap {
			t.Errorf("%s: execPlan() = (%v, %d), want (%v, %d)", tc.name, pol, maxw, tc.wantPol, tc.wantCap)
		}
	}
}

// TestParseExecPolicy round-trips the wire names.
func TestParseExecPolicy(t *testing.T) {
	for _, pol := range []ExecPolicy{ExecAuto, ExecFanout, ExecSequential} {
		got, err := ParseExecPolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParseExecPolicy(%q) = (%v, %v), want (%v, nil)", pol.String(), got, err, pol)
		}
	}
	if got, err := ParseExecPolicy(""); err != nil || got != ExecAuto {
		t.Errorf("ParseExecPolicy(\"\") = (%v, %v), want (ExecAuto, nil)", got, err)
	}
	if _, err := ParseExecPolicy("bogus"); err == nil {
		t.Error("ParseExecPolicy(\"bogus\") succeeded, want error")
	}
}
