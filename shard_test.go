package geosir

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func assertMatchesEqual(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: matches diverge\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

func assertSketchEqual(t *testing.T, label string, want, got []SketchMatch) {
	t.Helper()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: sketch matches diverge\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

// equivBase is the shared seeded random base of the equivalence suite:
// a small paper-statistics base plus distorted-copy queries and a
// two-shape sketch drawn from it.
func equivBase(t *testing.T) ([]synth.Image, []Shape, []Shape) {
	t.Helper()
	images := synth.GenerateBase(synth.PaperSpec(0.002, 41))
	rng := rand.New(rand.NewSource(43))
	queries := synth.Queries(rng, images, 5, 0.01)
	for i, q := range queries {
		if q.Validate() != nil {
			t.Fatalf("query %d invalid", i)
		}
	}
	// Sketch: two shapes from one image, lightly distorted.
	var sketch []Shape
	for _, im := range images {
		if len(im.Shapes) >= 2 {
			sketch = []Shape{
				synth.Distort(rng, im.Shapes[0], 0.01),
				synth.Distort(rng, im.Shapes[1], 0.01),
			}
			break
		}
	}
	if sketch == nil || sketch[0].Validate() != nil || sketch[1].Validate() != nil {
		t.Fatal("no usable sketch in the generated base")
	}
	return images, queries, sketch
}

func buildSingle(t *testing.T, images []synth.Image) *Engine {
	t.Helper()
	eng := New(DefaultOptions())
	for _, im := range images {
		if err := eng.AddImage(im.ID, im.Shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", im.ID, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func buildShardedFrom(t *testing.T, images []synth.Image, shards int) *ShardedEngine {
	t.Helper()
	se := NewSharded(DefaultOptions(), shards)
	for _, im := range images {
		if err := se.AddImage(im.ID, im.Shapes); err != nil {
			t.Fatalf("sharded AddImage(%d): %v", im.ID, err)
		}
	}
	if err := se.Freeze(); err != nil {
		t.Fatal(err)
	}
	return se
}

// TestShardedEquivalence is the suite the tentpole's exactness claim
// rests on: over the same seeded random base, ShardedEngine.Search
// returns byte-identical matches and ordering to a single Engine, for
// shard counts {1, 2, 7}, k ∈ {0, 1, many}, and every mode. k = 0 must
// fail identically (ErrBadK) on both. Run under -race this also
// exercises the fan-out concurrency.
func TestShardedEquivalence(t *testing.T) {
	images, queries, sketch := equivBase(t)
	single := buildSingle(t, images)
	ctx := context.Background()
	many := single.NumShapes() + 5
	t.Logf("base: %d images, %d shapes", single.NumImages(), single.NumShapes())

	for _, shards := range []int{1, 2, 7} {
		se := buildShardedFrom(t, images, shards)
		if se.NumShapes() != single.NumShapes() || se.NumImages() != single.NumImages() {
			t.Fatalf("shards=%d: size mismatch: %d/%d shapes, %d/%d images",
				shards, se.NumShapes(), single.NumShapes(), se.NumImages(), single.NumImages())
		}

		// k = 0 fails identically on both engines.
		_, errSingle := single.Search(ctx, SearchRequest{Query: queries[0], K: 0})
		_, errSharded := se.Search(ctx, SearchRequest{Query: queries[0], K: 0})
		if !errors.Is(errSingle, ErrBadK) || !errors.Is(errSharded, ErrBadK) {
			t.Fatalf("shards=%d: k=0 errors diverge: single %v, sharded %v", shards, errSingle, errSharded)
		}

		for _, k := range []int{1, 3, many} {
			for qi, q := range queries {
				for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
					req := SearchRequest{Query: q, K: k, Mode: mode}
					want, err := single.Search(ctx, req)
					if err != nil {
						t.Fatalf("single q%d k=%d %v: %v", qi, k, mode, err)
					}
					got, err := se.Search(ctx, req)
					if err != nil {
						t.Fatalf("shards=%d q%d k=%d %v: %v", shards, qi, k, mode, err)
					}
					label := mode.String()
					assertMatchesEqual(t, label, want.Matches, got.Matches)
					if got.Stats.UsedHashing != want.Stats.UsedHashing {
						t.Fatalf("shards=%d q%d k=%d %s: UsedHashing diverges (%v vs %v) — the auto fallback decision is not mirrored",
							shards, qi, k, label, got.Stats.UsedHashing, want.Stats.UsedHashing)
					}
				}
			}
			req := SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch}
			want, err := single.Search(ctx, req)
			if err != nil {
				t.Fatalf("single sketch k=%d: %v", k, err)
			}
			got, err := se.Search(ctx, req)
			if err != nil {
				t.Fatalf("shards=%d sketch k=%d: %v", shards, k, err)
			}
			assertSketchEqual(t, "sketch", want.SketchMatches, got.SketchMatches)
		}
	}
}

// TestShardedGlobalIDsMatchSingle verifies the id mapping directly:
// every global id resolves to the same geometry the single engine
// stores under that id.
func TestShardedGlobalIDsMatchSingle(t *testing.T) {
	images, _, _ := equivBase(t)
	single := buildSingle(t, images)
	se := buildShardedFrom(t, images, 7)
	m := se.IDMap()
	if m.NumGlobal() != single.NumShapes() {
		t.Fatalf("NumGlobal = %d, want %d", m.NumGlobal(), single.NumShapes())
	}
	for g := 0; g < m.NumGlobal(); g++ {
		shard, local, ok := m.Locate(g)
		if !ok {
			t.Fatalf("global id %d unmapped", g)
		}
		got := se.Shard(shard).Base().Shape(local)
		want := single.Base().Shape(g)
		if got.Image != want.Image || !reflect.DeepEqual(got.Poly.Pts, want.Poly.Pts) {
			t.Fatalf("global id %d: shard copy differs from single engine's shape", g)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	m := func(dist float64, id int) Match { return Match{ShapeID: id, Distance: dist} }
	lists := [][]Match{
		{m(0.1, 4), m(0.3, 0), m(0.3, 9)},
		{},
		{m(0.1, 2), m(0.5, 1)},
		{m(0.3, 5)},
	}
	want := []Match{m(0.1, 2), m(0.1, 4), m(0.3, 0), m(0.3, 5), m(0.3, 9), m(0.5, 1)}
	for k := 1; k <= len(want)+2; k++ {
		got := mergeTopK(lists, k)
		wantK := want
		if k < len(want) {
			wantK = want[:k]
		}
		if !reflect.DeepEqual(got, wantK) {
			t.Fatalf("k=%d: got %+v, want %+v", k, got, wantK)
		}
		// Inputs must not be consumed across calls.
		if lists[0][0] != m(0.1, 4) {
			t.Fatal("mergeTopK mutated its input lists")
		}
	}
	if got := mergeTopK(nil, 3); len(got) != 0 {
		t.Fatalf("merge of no lists returned %+v", got)
	}
}

// TestShardedPersistRoundTrip saves a sharded engine, reloads it, and
// requires complete recovery plus byte-identical search results.
func TestShardedPersistRoundTrip(t *testing.T) {
	images, queries, sketch := equivBase(t)
	se := buildShardedFrom(t, images, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	re, rec, err := LoadShardedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Complete() {
		t.Fatalf("recovery not complete: %+v", rec)
	}
	if rec.ImagesLoaded != len(images) || rec.ImagesExpected != len(images) {
		t.Fatalf("recovered %d/%d images, want %d", rec.ImagesLoaded, rec.ImagesExpected, len(images))
	}
	if re.NumShapes() != se.NumShapes() || re.NumImages() != se.NumImages() {
		t.Fatalf("reloaded sizes diverge: %d/%d shapes, %d/%d images",
			re.NumShapes(), se.NumShapes(), re.NumImages(), se.NumImages())
	}

	ctx := context.Background()
	for _, q := range queries {
		for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
			req := SearchRequest{Query: q, K: 4, Mode: mode}
			want, err := se.Search(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := re.Search(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesEqual(t, "reloaded "+mode.String(), want.Matches, got.Matches)
		}
	}
	want, err := se.Search(ctx, SearchRequest{Sketch: sketch, K: 4, Mode: ModeSketch})
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Search(ctx, SearchRequest{Sketch: sketch, K: 4, Mode: ModeSketch})
	if err != nil {
		t.Fatal(err)
	}
	assertSketchEqual(t, "reloaded sketch", want.SketchMatches, got.SketchMatches)

	// A re-save of the reloaded engine must keep the manifest stable.
	dir2 := filepath.Join(t.TempDir(), "snap2")
	if err := re.SaveDir(dir2); err != nil {
		t.Fatal(err)
	}
	m1, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := os.ReadFile(filepath.Join(dir2, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatal("manifest changed across a save/load/save round trip")
	}
}

// TestShardedDamagedShardDegrades destroys one shard file and requires
// the load to degrade — not die: the surviving shards answer, global
// shape ids are unchanged, and the results equal the full engine's
// results with the dead shard's images filtered out.
func TestShardedDamagedShardDegrades(t *testing.T) {
	images, queries, _ := equivBase(t)
	const shards = 3
	se := buildShardedFrom(t, images, shards)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	const dead = 1
	if err := os.WriteFile(filepath.Join(dir, shardFileName(dead)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, rec, err := LoadShardedDir(dir)
	if err != nil {
		t.Fatalf("damaged shard should degrade, not fail: %v", err)
	}
	if rec.Complete() {
		t.Fatal("recovery reported complete despite a destroyed shard")
	}
	if !rec.Shards[dead].Dropped || rec.Shards[dead].Err == nil {
		t.Fatalf("shard %d not reported dropped: %+v", dead, rec.Shards[dead])
	}
	deadImages := 0
	for _, im := range images {
		if core.ShardFor(im.ID, shards) == dead {
			deadImages++
		}
	}
	if rec.ImagesLoaded != len(images)-deadImages {
		t.Fatalf("ImagesLoaded = %d, want %d", rec.ImagesLoaded, len(images)-deadImages)
	}

	ctx := context.Background()
	k := se.NumShapes()
	for qi, q := range queries {
		want, err := se.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: the intact results minus the dead shard's images,
		// ids untouched.
		var filtered []Match
		for _, m := range want.Matches {
			if core.ShardFor(m.ImageID, shards) != dead {
				filtered = append(filtered, m)
			}
		}
		got, err := re.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesEqual(t, "degraded exact q"+string(rune('0'+qi)), filtered, got.Matches)
	}
}

// TestLoadShardedDirMissingManifest pins the hard-failure case: with no
// manifest there is no routing to reconstruct.
func TestLoadShardedDirMissingManifest(t *testing.T) {
	images, _, _ := equivBase(t)
	se := buildShardedFrom(t, images, 2)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadShardedDir(dir); err == nil {
		t.Fatal("load without manifest succeeded")
	}
}

// TestLoadAny covers both snapshot kinds through the one entry point
// the serving layer uses.
func TestLoadAny(t *testing.T) {
	images, queries, _ := equivBase(t)
	ctx := context.Background()
	req := SearchRequest{Query: queries[0], K: 3, Mode: ModeExact}

	single := buildSingle(t, images)
	file := filepath.Join(t.TempDir(), "base.gsir2")
	if err := single.SaveFile(file); err != nil {
		t.Fatal(err)
	}
	s1, rec1, err := LoadAny(file)
	if err != nil {
		t.Fatal(err)
	}
	if !rec1.Complete() || len(rec1.Shards) != 1 {
		t.Fatalf("file recovery: %+v", rec1)
	}

	se := buildShardedFrom(t, images, 4)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s2, rec2, err := LoadAny(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Complete() || len(rec2.Shards) != 4 {
		t.Fatalf("dir recovery: %+v", rec2)
	}

	want, err := single.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for label, s := range map[string]Searcher{"file": s1, "dir": s2} {
		got, err := s.Search(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertMatchesEqual(t, "LoadAny "+label, want.Matches, got.Matches)
	}
}

// TestShardedEmptyShards: more shards than images leaves some shards
// empty; they must be skipped, not break Freeze or Search.
func TestShardedEmptyShards(t *testing.T) {
	se := NewSharded(DefaultOptions(), 16)
	if err := se.AddImage(1, []Shape{square(0, 0, 2), triangle(4, 4, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := se.AddImage(2, []Shape{lshape(9, 9, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := se.Freeze(); err != nil {
		t.Fatal(err)
	}
	resp, err := se.Search(context.Background(), SearchRequest{Query: square(0.1, 0.1, 2), K: 5, Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches from a sharded engine with empty shards")
	}
}
