package geosir

// End-to-end integration tests: pixels → boundary extraction → shape
// base → retrieval → topological queries → external storage. These cross
// every module boundary the paper's prototype (§6) crosses.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/extstore"
	"repro/internal/geom"
	"repro/internal/synth"
)

// TestPixelsToRetrieval runs the §6 pipeline: rasterize scenes, extract
// boundaries, index, retrieve with a distorted sketch.
func TestPixelsToRetrieval(t *testing.T) {
	type scene struct {
		name  string
		shape geom.Poly
	}
	regular := func(n int, radius float64, c geom.Point) geom.Poly {
		pts := make([]geom.Point, n)
		for i := range pts {
			a := 2 * math.Pi * float64(i) / float64(n)
			pts[i] = c.Add(geom.Pt(radius*math.Cos(a), radius*math.Sin(a)))
		}
		return geom.NewPolygon(pts...)
	}
	scenes := []scene{
		{"triangle", regular(3, 55, geom.Pt(90, 90))},
		{"square", regular(4, 55, geom.Pt(90, 90))},
		{"hexagon", regular(6, 55, geom.Pt(90, 90))},
		{"octagon", regular(8, 55, geom.Pt(90, 90))},
	}
	eng := New(DefaultOptions())
	for id, sc := range scenes {
		r, err := extract.NewRaster(180, 180)
		if err != nil {
			t.Fatal(err)
		}
		r.FillPolygon(sc.shape)
		shapes := extract.ExtractShapes(r, 2.0)
		if len(shapes) != 1 {
			t.Fatalf("%s: extracted %d shapes", sc.name, len(shapes))
		}
		if err := eng.AddImage(id, shapes); err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Query each class with a rotated, scaled vector sketch.
	for id, sc := range scenes {
		q := sc.shape.Transform(Similarity(0.02, 1.1, Pt(5, 5)))
		ms, _, err := eng.FindSimilar(q, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(ms) != 1 || ms[0].ImageID != id {
			t.Errorf("%s: retrieved image %v, want %d (dist %v)",
				sc.name, ms[0].ImageID, id, ms[0].Distance)
		}
	}
}

// TestClusterDecomposeIndex feeds a self-intersecting doodle through
// decomposition and clustering into the engine.
func TestClusterDecomposeIndex(t *testing.T) {
	// A crossing doodle: must be decomposed before indexing.
	doodle := geom.NewPolyline(
		geom.Pt(0, 0), geom.Pt(10, 10), geom.Pt(10, 0), geom.Pt(0, 10))
	pieces := extract.DecomposeSimple(doodle)
	if len(pieces) < 2 {
		t.Fatalf("decomposition produced %d pieces", len(pieces))
	}
	clusters := extract.DetectClusters(pieces, 1e-6)
	if len(clusters) != 1 {
		t.Errorf("pieces of one doodle should form one cluster: %v", clusters)
	}
	eng := New(DefaultOptions())
	var indexable []Shape
	for _, p := range pieces {
		if p.Validate() == nil && p.NumVertices() >= 3 {
			indexable = append(indexable, p)
		}
	}
	if len(indexable) == 0 {
		t.Fatal("nothing indexable after decomposition")
	}
	if err := eng.AddImage(0, indexable); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	// The loop piece should be retrievable.
	var loop Shape
	found := false
	for _, p := range pieces {
		if p.Closed {
			loop, found = p, true
			break
		}
	}
	if found {
		ms, _, err := eng.FindSimilar(loop, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 || ms[0].Distance > 1e-6 {
			t.Errorf("loop piece not retrieved exactly: %v", ms)
		}
	}
}

// TestRetrievalThroughExternalStore verifies the trace/replay contract:
// every entry the matcher touches is readable from every layout, and the
// records round-trip the normalized geometry.
func TestRetrievalThroughExternalStore(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.003
	cfg.Queries = 3
	f, err := experiments.BuildFixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stored := make(map[int32]bool, len(f.Records))
	for _, r := range f.Records {
		stored[r.EntryID] = true
	}
	for _, layout := range extstore.Layouts() {
		store, err := extstore.NewStore(f.Records, layout, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range f.Queries {
			var readErr error
			_, _, err := f.Base.MatchTrace(q, 2, func(entryID int) {
				if !stored[int32(entryID)] {
					return // oversized entries live outside the store
				}
				rec, err := store.ReadEntry(int32(entryID))
				if err != nil {
					readErr = err
					return
				}
				// The stored normalized copy must match the in-memory one
				// up to float32 rounding.
				e := f.Base.Entry(entryID)
				if len(rec.Pts) != len(e.Poly.Pts) {
					readErr = errMismatch
					return
				}
				for i := range rec.Pts {
					if !rec.Pts[i].Eq(e.Poly.Pts[i], 1e-4) {
						readErr = errMismatch
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: match: %v", layout, err)
			}
			if readErr != nil {
				t.Fatalf("%s: replay: %v", layout, readErr)
			}
		}
		if store.Stats().DiskReads == 0 {
			t.Errorf("%s: no I/O recorded", layout)
		}
	}
}

var errMismatch = errString("stored record mismatches in-memory entry")

type errString string

func (e errString) Error() string { return string(e) }

// TestHashingFallbackAgreesWithScan: on a base where the query has no
// close match, the hash fallback's best candidate should be a reasonable
// shape — its distance within a small factor of the true best found by
// exhaustive scan.
func TestHashingFallbackAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eng := New(DefaultOptions())
	for i := 0; i < 40; i++ {
		s := synth.Star(rng, 3+rng.Intn(8), 0.02)
		if err := eng.AddImage(i, []Shape{s}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	// A blobby query unlike any star.
	var pts []Point
	for i := 0; i < 16; i++ {
		a := 2 * math.Pi * float64(i) / 16
		r := 1 + 0.1*math.Sin(3*a)
		pts = append(pts, Pt(r*math.Cos(a), r*math.Sin(a)))
	}
	q := NewPolygon(pts...)

	approx, err := eng.FindApproximate(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) == 0 {
		t.Skip("hash buckets empty for this query (legal: hashing is approximate)")
	}
	scan, err := core.NewScanMatcher(eng.Base())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := scan.Match(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if approx[0].Distance < exact[0].DistVertex-1e-9 {
		t.Fatalf("approximate (%v) beat exact (%v)?", approx[0].Distance, exact[0].DistVertex)
	}
	if approx[0].Distance > 5*exact[0].DistVertex+0.1 {
		t.Errorf("hash fallback too far off: approx %v vs exact %v",
			approx[0].Distance, exact[0].DistVertex)
	}
}

// TestEngineDeterminism: the same inputs produce identical results.
func TestEngineDeterminism(t *testing.T) {
	build := func() ([]Match, Stats) {
		rng := rand.New(rand.NewSource(5))
		eng := New(DefaultOptions())
		for i := 0; i < 12; i++ {
			s := synth.Star(rng, 3+i%5, 0.02)
			if err := eng.AddImage(i, []Shape{s}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Freeze(); err != nil {
			t.Fatal(err)
		}
		q := synth.Star(rand.New(rand.NewSource(6)), 4, 0.02)
		ms, st, err := eng.FindSimilar(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		return ms, st
	}
	a, sa := build()
	b, sb := build()
	if len(a) != len(b) || sa != sb {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a, sa, b, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
