package geosir

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// FindSimilarBatch answers many similarity queries concurrently. After
// Freeze the engine's index structures are immutable, so queries are
// embarrassingly parallel. workers ≤ 0 selects GOMAXPROCS.
//
// Results are positionally aligned with the queries. The first query
// error aborts the batch.
//
// Deprecated: issue Search requests from your own worker pool; each
// Search is independent on a frozen engine and a ShardedEngine already
// parallelizes a single request across shards.
func (e *Engine) FindSimilarBatch(queries []Shape, k, workers int) ([][]Match, []Stats, error) {
	return e.FindSimilarBatchCtx(context.Background(), queries, k, workers)
}

// FindSimilarBatchCtx is FindSimilarBatch under a context: when ctx is
// cancelled (or its deadline passes) the dispatcher stops handing out
// queries, in-flight workers finish their current query, and the batch
// returns ctx.Err() promptly instead of draining the remaining input.
// An empty batch returns empty (non-nil) results without spinning up any
// workers.
//
// Deprecated: issue Search requests from your own worker pool (see
// FindSimilarBatch).
func (e *Engine) FindSimilarBatchCtx(ctx context.Context, queries []Shape, k, workers int) ([][]Match, []Stats, error) {
	if !e.frozen {
		return nil, nil, ErrNotFrozen
	}
	if k <= 0 {
		return nil, nil, ErrBadK
	}
	if len(queries) == 0 {
		return [][]Match{}, []Stats{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	matches := make([][]Match, len(queries))
	stats := make([]Stats, len(queries))
	errs := make([]error, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				resp, err := e.Search(context.Background(), SearchRequest{Query: queries[i], K: k, Mode: ModeAuto})
				if err != nil {
					errs[i] = err
					continue
				}
				matches[i], stats[i] = resp.Matches, resp.Stats
			}
		}()
	}
	cancelled := false
dispatch:
	for i := range queries {
		select {
		case next <- i:
		case <-done:
			cancelled = true
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if cancelled {
		return nil, nil, ctx.Err()
	}

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("geosir: query %d: %w", i, err)
		}
	}
	return matches, stats, nil
}

// FindBySketchWorkers is FindBySketch with an explicit worker count for
// the per-sketch-shape retrievals (workers ≤ 0 selects GOMAXPROCS).
//
// Deprecated: use Search with ModeSketch:
//
//	resp, err := e.Search(ctx, SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch})
//
// with Exec: ExecFanout and MaxWorkers: workers to pin an explicit
// width, or the default ExecAuto to let the engine plan it.
func (e *Engine) FindBySketchWorkers(sketch []Shape, k, workers int) ([]SketchMatch, error) {
	return e.FindBySketchWorkersCtx(context.Background(), sketch, k, workers)
}

// FindBySketchWorkersCtx is FindBySketchWorkers under a context: a
// cancelled context stops the dispatcher before the next sketch shape is
// handed out and the call returns ctx.Err() without waiting for the
// remaining retrievals.
//
// Deprecated: use Search with ModeSketch (see FindBySketchWorkers).
func (e *Engine) FindBySketchWorkersCtx(ctx context.Context, sketch []Shape, k, workers int) ([]SketchMatch, error) {
	req := SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch}
	if workers > 0 {
		// The historical contract: an explicit positive count pins the
		// fan-out width (≤ 0 meant "let the engine decide", now ExecAuto).
		req.Exec, req.MaxWorkers = ExecFanout, workers
	}
	resp, err := e.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.SketchMatches, nil
}
