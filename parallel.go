package geosir

import (
	"fmt"
	"runtime"
	"sync"
)

// FindSimilarBatch answers many similarity queries concurrently. After
// Freeze the engine's index structures are immutable, so queries are
// embarrassingly parallel — the "fast parallel similarity search" setting
// the paper's related work ([5]) targets. workers ≤ 0 selects GOMAXPROCS.
//
// Results are positionally aligned with the queries. The first query
// error aborts the batch.
func (e *Engine) FindSimilarBatch(queries []Shape, k, workers int) ([][]Match, []Stats, error) {
	if !e.frozen {
		return nil, nil, fmt.Errorf("geosir: engine must be frozen")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("geosir: k must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	matches := make([][]Match, len(queries))
	stats := make([]Stats, len(queries))
	errs := make([]error, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				m, s, err := e.FindSimilar(queries[i], k)
				matches[i], stats[i], errs[i] = m, s, err
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("geosir: query %d: %w", i, err)
		}
	}
	return matches, stats, nil
}
