package geosir

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// FindSimilarBatch answers many similarity queries concurrently. After
// Freeze the engine's index structures are immutable, so queries are
// embarrassingly parallel — the "fast parallel similarity search" setting
// the paper's related work ([5]) targets. workers ≤ 0 selects GOMAXPROCS.
//
// Results are positionally aligned with the queries. The first query
// error aborts the batch.
func (e *Engine) FindSimilarBatch(queries []Shape, k, workers int) ([][]Match, []Stats, error) {
	return e.FindSimilarBatchCtx(context.Background(), queries, k, workers)
}

// FindSimilarBatchCtx is FindSimilarBatch under a context: when ctx is
// cancelled (or its deadline passes) the dispatcher stops handing out
// queries, in-flight workers finish their current query, and the batch
// returns ctx.Err() promptly instead of draining the remaining input.
// An empty batch returns empty (non-nil) results without spinning up any
// workers.
func (e *Engine) FindSimilarBatchCtx(ctx context.Context, queries []Shape, k, workers int) ([][]Match, []Stats, error) {
	if !e.frozen {
		return nil, nil, fmt.Errorf("geosir: engine must be frozen")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("geosir: k must be positive")
	}
	if len(queries) == 0 {
		return [][]Match{}, []Stats{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	matches := make([][]Match, len(queries))
	stats := make([]Stats, len(queries))
	errs := make([]error, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				m, s, err := e.FindSimilar(queries[i], k)
				matches[i], stats[i], errs[i] = m, s, err
			}
		}()
	}
	cancelled := false
dispatch:
	for i := range queries {
		select {
		case next <- i:
		case <-done:
			cancelled = true
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if cancelled {
		return nil, nil, ctx.Err()
	}

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("geosir: query %d: %w", i, err)
		}
	}
	return matches, stats, nil
}

// FindBySketchWorkers is FindBySketch with an explicit worker count for
// the per-sketch-shape retrievals (workers ≤ 0 selects GOMAXPROCS). Each
// worker runs one sketch shape's Match against the frozen index and
// collects that shape's best distance per image; the per-image tables
// are merged after the barrier, so the result is identical to the
// sequential evaluation order.
func (e *Engine) FindBySketchWorkers(sketch []Shape, k, workers int) ([]SketchMatch, error) {
	return e.FindBySketchWorkersCtx(context.Background(), sketch, k, workers)
}

// FindBySketchWorkersCtx is FindBySketchWorkers under a context: a
// cancelled context stops the dispatcher before the next sketch shape is
// handed out and the call returns ctx.Err() without waiting for the
// remaining retrievals.
func (e *Engine) FindBySketchWorkersCtx(ctx context.Context, sketch []Shape, k, workers int) ([]SketchMatch, error) {
	if !e.frozen {
		return nil, fmt.Errorf("geosir: engine must be frozen")
	}
	if k <= 0 {
		return nil, fmt.Errorf("geosir: k must be positive")
	}
	if len(sketch) == 0 {
		return nil, fmt.Errorf("geosir: empty sketch")
	}
	for si, q := range sketch {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sketch) {
		workers = len(sketch)
	}

	base := e.db.Base()
	// For each sketch shape, the best distance per image, filled in by
	// that shape's worker (no shared writes before the barrier).
	perShape := make([]map[int]float64, len(sketch))
	errs := make([]error, len(sketch))
	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range next {
				// Retrieve generously: enough shapes to cover every
				// image once.
				ms, _, err := base.Match(sketch[si], base.NumShapes())
				if err != nil {
					errs[si] = err
					continue
				}
				best := make(map[int]float64)
				for _, m := range ms {
					img := base.Shape(m.ShapeID).Image
					if d, ok := best[img]; !ok || m.DistVertex < d {
						best[img] = m.DistVertex
					}
				}
				perShape[si] = best
			}
		}()
	}
	cancelled := false
dispatch:
	for si := range sketch {
		select {
		case next <- si:
		case <-done:
			cancelled = true
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if cancelled {
		return nil, ctx.Err()
	}
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
	}

	// Barrier passed: merge the per-shape tables into the per-image view.
	perImage := make(map[int][]float64)
	for si, best := range perShape {
		for img, d := range best {
			ds, ok := perImage[img]
			if !ok {
				ds = make([]float64, len(sketch))
				for i := range ds {
					ds[i] = math.Inf(1)
				}
				perImage[img] = ds
			}
			ds[si] = d
		}
	}
	out := make([]SketchMatch, 0, len(perImage))
	for img, ds := range perImage {
		var sum float64
		complete := true
		for _, d := range ds {
			if math.IsInf(d, 1) {
				complete = false
				break
			}
			sum += d
		}
		if !complete {
			continue // the image lacks a counterpart for some sketch shape
		}
		out = append(out, SketchMatch{
			ImageID:  img,
			Score:    sum / float64(len(ds)),
			PerShape: ds,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ImageID < out[j].ImageID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
