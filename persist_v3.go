package geosir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"repro/internal/annindex"
	"repro/internal/core"
	"repro/internal/geohash"
	"repro/internal/geom"
	"repro/internal/mmap"
	"repro/internal/query"
	"repro/internal/rangesearch"
	"repro/internal/shapeindex"
)

// GSIR3 is the mmap-friendly frozen-shard format: the on-disk form of
// every hot query-time structure *is* its runtime form, so opening a
// snapshot is a map + verify + O(n) pointer stitching instead of a
// geometry rebuild, and the OS page cache becomes the storage
// hierarchy for bigger-than-RAM bases.
//
//	magic "GSIR3\n" | u16 version=1 | u32 nSections | u32 flags    (16 B)
//	nSections × { tag [4]byte | u32 rsvd | u64 off | u64 len | u32 crc32(payload) | u32 rsvd }
//	u32 crc32(section table)
//	payloads, each at an 8-byte-aligned offset, zero padding between;
//	the file ends exactly at the end of the last payload.
//
// Everything is little-endian. Section payloads are contiguous arrays
// of fixed-size elements (float64 / int32 / padding-free structs of
// them), so on a little-endian host an mmap'd payload can be
// reinterpreted in place as the Go slice the engine serves from
// (internal/mmap.Cast); everywhere else the same payload is decoded
// element-wise into fresh heap slices with identical results.
//
// Two section families exist. The raw family (IMGS, SHPM, RAWV) is the
// canonical image base — exactly the information GSIR2 stores — so a
// GSIR3 snapshot with damaged derived sections can still be rebuilt the
// slow way, and Save/SaveAs round-trips remain canonical. The derived
// family is the frozen index: entry metadata and transforms (ENTM,
// ENTT), the flattened vertex arrays (EOFF, VENT, EVTX), per-entry
// geometric bounds (GBND), the pooled BoundaryDist segment-grid arrays
// (GRDH, GSEG, GCEL, GIDS), the kd-tree backend (KDTP, KDTI, KDTB),
// geometric-hash quadruples (QUAD), diameter angles (DANG), image
// graphs (GRPH), and the ANN signature family (ANNP, ANNS).
//
// Integrity: the loader verifies the table checksum and then every
// section's CRC32 before assembly — corrupt bytes are refused (or, via
// LoadPartial, salvaged by rebuilding from the intact raw family),
// never served. Assembly after verification trusts element values and
// only re-checks the shape invariants slice indexing depends on.

const (
	magicGSIR3 = "GSIR3\n"

	v3Version    = 1
	v3HeaderLen  = 16
	v3TableEntry = 32
	v3Align      = 8

	// v3MaxSections bounds the declared section count against corrupt
	// headers (the writer emits a fixed set of 22).
	v3MaxSections = 64
)

// The GSIR3 section tags, in file order.
var v3Tags = []string{
	"OPTS", "IMGS", "SHPM", "RAWV",
	"ENTM", "ENTT", "EOFF", "VENT", "EVTX", "GBND",
	"GRDH", "GSEG", "GCEL", "GIDS",
	"KDTP", "KDTI", "KDTB",
	"QUAD", "DANG", "GRPH",
	"ANNP", "ANNS",
}

// v3RawTags is the raw family: sections sufficient (and required) to
// rebuild the engine from scratch when derived sections are damaged.
var v3RawTags = map[string]bool{"OPTS": true, "IMGS": true, "SHPM": true, "RAWV": true}

// v3OptsLen is the OPTS payload: 4 float64 options + 8 uint32 counts.
const v3OptsLen = 4*8 + 8*4

// backend kind enumeration persisted in OPTS.
const (
	v3BackendBrute   = 1
	v3BackendKDTree  = 2
	v3BackendLayered = 3
)

func v3BackendCode(k rangesearch.Kind) uint32 {
	switch k {
	case rangesearch.KindKDTree:
		return v3BackendKDTree
	case rangesearch.KindLayered:
		return v3BackendLayered
	case rangesearch.KindBrute:
		return v3BackendBrute
	}
	return 0
}

func v3BackendKind(code uint32) (rangesearch.Kind, error) {
	switch code {
	case v3BackendBrute:
		return rangesearch.KindBrute, nil
	case v3BackendKDTree:
		return rangesearch.KindKDTree, nil
	case v3BackendLayered:
		return rangesearch.KindLayered, nil
	}
	return "", fmt.Errorf("geosir: unknown backend code %d", code)
}

// graph edge labels persisted in GRPH.
const (
	v3RelContain = 1
	v3RelOverlap = 2
)

// gridHeader is the fixed 80-byte per-entry descriptor of a pooled
// BoundaryDist segment grid: geometry first (8-byte fields), then the
// int32 offsets into the pooled GSEG/GCEL/GIDS arrays. The layout is
// padding-free, so a GRDH payload casts directly to []gridHeader.
type gridHeader struct {
	MinX, MinY, MaxX, MaxY float64
	Cw, Ch                 float64
	Nx, Ny                 int32
	SegOff, NSegs          int32
	CellOff, NCells        int32
	IDOff, NIDs            int32
}

// SaveFileAs is SaveFile in an explicit stream format.
func (e *Engine) SaveFileAs(path string, f Format) error {
	return e.saveFileAtomicAs(path, f, nil)
}

func (e *Engine) saveFileAtomicAs(path string, f Format, wrap func(io.Writer) io.Writer) error {
	if f == FormatGSIR2 {
		return e.saveFileAtomic(path, wrap)
	}
	save := func(w io.Writer) error { return e.SaveAs(w, f) }
	return saveAtomic(path, save, wrap)
}

// v3sec is one section under construction in the writer.
type v3sec struct {
	tag     string
	payload []byte
}

// saveGSIR3 writes the mmap-friendly format. Unlike GSIR1/2 it requires
// a frozen engine: the derived sections *are* the frozen index. (Every
// production write site — SaveDir, compaction commits — saves frozen
// engines; use SaveAs(w, FormatGSIR2) to snapshot an unfrozen one.)
func (e *Engine) saveGSIR3(w io.Writer) error {
	secs, err := e.buildV3Sections()
	if err != nil {
		return err
	}
	// Lay out payloads after the header + table + table CRC, each at an
	// 8-aligned offset, and validate the alignment as we go: a
	// misaligned section would silently force every reader onto the
	// copy-decode path.
	tableLen := len(secs) * v3TableEntry
	off := uint64(v3HeaderLen + tableLen + 4)
	off = (off + v3Align - 1) &^ (v3Align - 1)
	table := make([]byte, 0, tableLen)
	offs := make([]uint64, len(secs))
	for i, s := range secs {
		if off%v3Align != 0 {
			return fmt.Errorf("geosir: internal error: section %s at misaligned offset %d", s.tag, off)
		}
		offs[i] = off
		table = append(table, s.tag...)
		table = appendU32(table, 0)
		table = appendU64(table, off)
		table = appendU64(table, uint64(len(s.payload)))
		table = appendU32(table, crc32.ChecksumIEEE(s.payload))
		table = appendU32(table, 0)
		off += uint64(len(s.payload))
		off = (off + v3Align - 1) &^ (v3Align - 1)
	}
	// The file ends exactly at the end of the last payload (no trailing
	// padding), so total size is the last section's end.
	end := uint64(v3HeaderLen + tableLen + 4)
	if len(secs) > 0 {
		end = offs[len(secs)-1] + uint64(len(secs[len(secs)-1].payload))
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicGSIR3); err != nil {
		return err
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:], v3Version)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(hdr[6:], 0)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	var tcrc [4]byte
	binary.LittleEndian.PutUint32(tcrc[:], crc32.ChecksumIEEE(table))
	if _, err := bw.Write(tcrc[:]); err != nil {
		return err
	}
	pos := uint64(v3HeaderLen + tableLen + 4)
	var pad [v3Align]byte
	for i, s := range secs {
		if offs[i] > pos {
			if _, err := bw.Write(pad[:offs[i]-pos]); err != nil {
				return err
			}
			pos = offs[i]
		}
		if _, err := bw.Write(s.payload); err != nil {
			return err
		}
		pos += uint64(len(s.payload))
	}
	if pos != end {
		return fmt.Errorf("geosir: internal error: wrote %d bytes, want %d", pos, end)
	}
	return bw.Flush()
}

// buildV3Sections flattens the frozen engine into the fixed section
// set. Field-by-field append order must mirror the struct layouts the
// mmap loader casts to (gridHeader, core.EntryMeta, geom.Point,
// geom.Transform, geom.Rect, core.GeomBound).
func (e *Engine) buildV3Sections() ([]v3sec, error) {
	if !e.frozen {
		return nil, fmt.Errorf("geosir: GSIR3 requires a frozen engine (use FormatGSIR2 for unfrozen snapshots)")
	}
	base := e.db.Base()
	parts, err := base.FrozenParts()
	if err != nil {
		return nil, err
	}
	images := e.imagesInOrder()
	shapes := base.Shapes()
	nsh := len(shapes)
	ne := len(parts.Entries)

	out := make(map[string][]byte, len(v3Tags))

	// IMGS / SHPM / RAWV — the raw image base, shapes in id order
	// (imagesInOrder groups by image preserving that order).
	imgs := appendU32(nil, uint32(len(images)))
	var shpm, rawv []byte
	rawOff := uint32(0)
	for _, img := range images {
		imgs = appendU32(imgs, uint32(img.id))
		imgs = appendU32(imgs, uint32(len(img.shapes)))
		for _, p := range img.shapes {
			flags := uint32(0)
			if p.Closed {
				flags = 1
			}
			shpm = appendU32(shpm, flags)
			shpm = appendU32(shpm, rawOff)
			shpm = appendU32(shpm, uint32(len(p.Pts)))
			shpm = appendU32(shpm, 0)
			for _, pt := range p.Pts {
				rawv = appendF64(rawv, pt.X)
				rawv = appendF64(rawv, pt.Y)
			}
			rawOff += uint32(len(p.Pts))
		}
	}
	out["IMGS"], out["SHPM"], out["RAWV"] = imgs, shpm, rawv

	// ENTM / ENTT — entry scalar metadata and transforms.
	entm := make([]byte, 0, ne*16)
	entt := make([]byte, 0, ne*2*32)
	for i := range parts.Entries {
		en := &parts.Entries[i]
		entm = appendU32(entm, uint32(int32(en.ShapeID)))
		entm = appendU32(entm, uint32(int32(en.Copy)))
		entm = appendU32(entm, uint32(int32(en.DiamI)))
		entm = appendU32(entm, uint32(int32(en.DiamJ)))
		for _, tr := range [2]geom.Transform{en.Norm, en.Inv} {
			entt = appendF64(entt, tr.S)
			entt = appendF64(entt, tr.Theta)
			entt = appendF64(entt, tr.T.X)
			entt = appendF64(entt, tr.T.Y)
		}
	}
	out["ENTM"], out["ENTT"] = entm, entt

	// EOFF / VENT / EVTX — the flattened vertex index.
	out["EOFF"] = appendI32s(nil, parts.EntryOff)
	out["VENT"] = appendI32s(nil, parts.VertEntry)
	evtx := make([]byte, 0, len(parts.Verts)*16)
	for _, p := range parts.Verts {
		evtx = appendF64(evtx, p.X)
		evtx = appendF64(evtx, p.Y)
	}
	out["EVTX"] = evtx

	// GBND — per-entry geometric bounds.
	gbnd := make([]byte, 0, ne*7*8)
	for _, gb := range parts.GeomBounds {
		gbnd = appendF64(gbnd, gb.CX)
		gbnd = appendF64(gbnd, gb.CY)
		gbnd = appendF64(gbnd, gb.R)
		gbnd = appendF64(gbnd, gb.MinX)
		gbnd = appendF64(gbnd, gb.MinY)
		gbnd = appendF64(gbnd, gb.MaxX)
		gbnd = appendF64(gbnd, gb.MaxY)
	}
	out["GBND"] = gbnd

	// GRDH / GSEG / GCEL / GIDS — the pooled oracle grids.
	var grdh, gseg, gcel, gids []byte
	segOff, cellOff, idOff := int32(0), int32(0), int32(0)
	for i, o := range parts.Oracles {
		if o == nil || o.Grid() == nil {
			return nil, fmt.Errorf("geosir: entry %d has no oracle grid", i)
		}
		gp := o.Grid().Parts()
		n := int32(len(gp.Ax))
		grdh = appendF64(grdh, gp.Bounds.Min.X)
		grdh = appendF64(grdh, gp.Bounds.Min.Y)
		grdh = appendF64(grdh, gp.Bounds.Max.X)
		grdh = appendF64(grdh, gp.Bounds.Max.Y)
		grdh = appendF64(grdh, gp.Cw)
		grdh = appendF64(grdh, gp.Ch)
		for _, v := range [8]int32{int32(gp.Nx), int32(gp.Ny), segOff, n,
			cellOff, int32(len(gp.CellStart)), idOff, int32(len(gp.CellIDs))} {
			grdh = appendU32(grdh, uint32(v))
		}
		for _, arr := range [5][]float64{gp.Ax, gp.Ay, gp.Dx, gp.Dy, gp.InvL2} {
			for _, v := range arr {
				gseg = appendF64(gseg, v)
			}
		}
		gcel = appendI32s(gcel, gp.CellStart)
		gids = appendI32s(gids, gp.CellIDs)
		segOff += n
		cellOff += int32(len(gp.CellStart))
		idOff += int32(len(gp.CellIDs))
	}
	out["GRDH"], out["GSEG"], out["GCEL"], out["GIDS"] = grdh, gseg, gcel, gids

	// KDTP / KDTI / KDTB — the kd-tree backend in median layout (empty
	// for other backends, which are rebuilt from EVTX at load).
	var kdtp, kdti, kdtb []byte
	if t, ok := parts.Backend.(*rangesearch.KDTree); ok {
		kp := t.Parts()
		for _, p := range kp.Pts {
			kdtp = appendF64(kdtp, p.X)
			kdtp = appendF64(kdtp, p.Y)
		}
		kdti = appendI32s(kdti, kp.IDs)
		for _, r := range kp.Bounds {
			kdtb = appendF64(kdtb, r.Min.X)
			kdtb = appendF64(kdtb, r.Min.Y)
			kdtb = appendF64(kdtb, r.Max.X)
			kdtb = appendF64(kdtb, r.Max.Y)
		}
	}
	out["KDTP"], out["KDTI"], out["KDTB"] = kdtp, kdti, kdtb

	// QUAD / DANG — geometric-hash quadruples and diameter angles, per
	// shape. A shape the hash table skipped (degenerate canonical
	// normalization) is stored as an all -1 quadruple.
	quad := make([]byte, 0, nsh*16)
	dang := make([]byte, 0, nsh*8)
	for _, s := range shapes {
		if q, ok := e.table.Quad(s.ID); ok {
			for _, c := range q {
				quad = appendU32(quad, uint32(int32(c)))
			}
		} else {
			for range [4]int{} {
				quad = appendU32(quad, ^uint32(0)) // -1 sentinel: shape not in table
			}
		}
		ang, _ := e.db.DiamAng(s.ID)
		dang = appendF64(dang, ang)
	}
	out["QUAD"], out["DANG"] = quad, dang

	// GRPH — per-image topology graphs (vertices + labeled edges).
	grph := appendU32(nil, uint32(len(images)))
	for _, img := range images {
		g, ok := e.db.Graph(img.id)
		if !ok {
			return nil, fmt.Errorf("geosir: image %d has no graph", img.id)
		}
		grph = appendU32(grph, uint32(img.id))
		grph = appendU32(grph, uint32(len(g.Shapes)))
		for _, sid := range g.Shapes {
			grph = appendU32(grph, uint32(sid))
		}
		grph = appendU32(grph, uint32(len(g.Edges)))
		for _, ed := range g.Edges {
			lbl := uint32(v3RelContain)
			if ed.Label == query.RelOverlap {
				lbl = v3RelOverlap
			} else if ed.Label != query.RelContain {
				return nil, fmt.Errorf("geosir: image %d has unknown edge label %q", img.id, ed.Label)
			}
			grph = appendU32(grph, uint32(ed.From))
			grph = appendU32(grph, uint32(ed.To))
			grph = appendU32(grph, lbl)
		}
	}
	out["GRPH"] = grph

	// ANNP / ANNS — the MinHash/LSH signature family.
	p, sigs, n := e.annSignatures()
	annp := appendU64(nil, p.Seed)
	annp = appendU32(annp, uint32(p.GridRes))
	annp = appendU32(annp, uint32(p.Bands))
	annp = appendU32(annp, uint32(p.Rows))
	annp = appendU32(annp, uint32(n))
	anns := make([]byte, 0, len(sigs)*8)
	for _, s := range sigs {
		anns = appendU64(anns, s)
	}
	out["ANNP"], out["ANNS"] = annp, anns

	// OPTS — options + counts + backend code, written last so the
	// counts reflect the arrays above.
	opt := make([]byte, 0, v3OptsLen)
	opt = appendF64(opt, e.opts.Alpha)
	opt = appendF64(opt, e.opts.Beta)
	opt = appendF64(opt, e.opts.Tau)
	opt = appendF64(opt, e.opts.AngleTol)
	opt = appendU32(opt, uint32(e.opts.HashCurves))
	opt = appendU32(opt, uint32(len(images)))
	opt = appendU32(opt, uint32(nsh))
	opt = appendU32(opt, uint32(ne))
	opt = appendU32(opt, uint32(len(parts.Verts)))
	opt = appendU32(opt, rawOff) // total raw vertices
	opt = appendU32(opt, v3BackendCode(rangesearch.KindOf(parts.Backend)))
	opt = appendU32(opt, 0)
	out["OPTS"] = opt

	secs := make([]v3sec, 0, len(v3Tags))
	for _, tag := range v3Tags {
		payload, ok := out[tag]
		if !ok {
			return nil, fmt.Errorf("geosir: internal error: section %s not built", tag)
		}
		secs = append(secs, v3sec{tag: tag, payload: payload})
	}
	return secs, nil
}

func appendI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

// v3Section is one parsed section-table row.
type v3Section struct {
	tag string
	off uint64
	len uint64
	crc uint32
}

// parseV3Layout validates the header + section table of a complete
// GSIR3 byte image (magic included) and returns the table rows. Offsets
// are checked for alignment, bounds, ordering, and exact file-size
// coverage; payload CRCs are NOT verified here.
func parseV3Layout(data []byte) ([]v3Section, error) {
	if len(data) < v3HeaderLen+4 {
		return nil, fmt.Errorf("geosir: GSIR3 snapshot truncated at %d bytes", len(data))
	}
	if string(data[:magicLen]) != magicGSIR3 {
		return nil, fmt.Errorf("geosir: bad magic %q", string(data[:magicLen]))
	}
	if v := binary.LittleEndian.Uint16(data[6:]); v != v3Version {
		return nil, fmt.Errorf("geosir: unsupported GSIR3 version %d", v)
	}
	nsec := binary.LittleEndian.Uint32(data[8:])
	if nsec == 0 || nsec > v3MaxSections {
		return nil, fmt.Errorf("geosir: implausible GSIR3 section count %d", nsec)
	}
	tableLen := int(nsec) * v3TableEntry
	if len(data) < v3HeaderLen+tableLen+4 {
		return nil, fmt.Errorf("geosir: GSIR3 section table truncated")
	}
	table := data[v3HeaderLen : v3HeaderLen+tableLen]
	wantCRC := binary.LittleEndian.Uint32(data[v3HeaderLen+tableLen:])
	if crc32.ChecksumIEEE(table) != wantCRC {
		return nil, fmt.Errorf("geosir: GSIR3 section table checksum mismatch")
	}
	secs := make([]v3Section, nsec)
	prevEnd := uint64(v3HeaderLen + tableLen + 4)
	for i := range secs {
		row := table[i*v3TableEntry:]
		s := v3Section{
			tag: string(row[0:4]),
			off: binary.LittleEndian.Uint64(row[8:]),
			len: binary.LittleEndian.Uint64(row[16:]),
			crc: binary.LittleEndian.Uint32(row[24:]),
		}
		if s.off%v3Align != 0 {
			return nil, fmt.Errorf("geosir: section %s at misaligned offset %d", s.tag, s.off)
		}
		if s.off < prevEnd || s.off > uint64(len(data)) || s.len > uint64(len(data))-s.off {
			return nil, fmt.Errorf("geosir: section %s [%d,+%d) outside file of %d bytes",
				s.tag, s.off, s.len, len(data))
		}
		prevEnd = s.off + s.len
		secs[i] = s
	}
	if prevEnd != uint64(len(data)) {
		return nil, fmt.Errorf("geosir: %d trailing bytes after final section", uint64(len(data))-prevEnd)
	}
	return secs, nil
}

// v3Reader is the verified section map of a GSIR3 image plus the decode
// strategy (alias in place vs copy-decode).
type v3Reader struct {
	sec   map[string][]byte
	alias bool
}

// v3Verify checks every section CRC and returns the section map plus
// the tags that failed. Damage never panics and never reaches assembly.
func v3Verify(data []byte, secs []v3Section) (map[string][]byte, []string) {
	m := make(map[string][]byte, len(secs))
	var bad []string
	for _, s := range secs {
		payload := data[s.off : s.off+s.len]
		if crc32.ChecksumIEEE(payload) != s.crc {
			bad = append(bad, s.tag)
			continue
		}
		m[s.tag] = payload
	}
	return m, bad
}

func (r *v3Reader) need(tag string) ([]byte, error) {
	b, ok := r.sec[tag]
	if !ok {
		return nil, fmt.Errorf("geosir: GSIR3 snapshot missing section %s", tag)
	}
	return b, nil
}

func (r *v3Reader) f64s(b []byte) []float64 {
	if r.alias {
		if v, ok := mmap.Cast[float64](b); ok {
			return v
		}
	}
	return mmap.F64s(b)
}

func (r *v3Reader) i32s(b []byte) []int32 {
	if r.alias {
		if v, ok := mmap.Cast[int32](b); ok {
			return v
		}
	}
	return mmap.I32s(b)
}

func (r *v3Reader) u64s(b []byte) []uint64 {
	if r.alias {
		if v, ok := mmap.Cast[uint64](b); ok {
			return v
		}
	}
	return mmap.U64s(b)
}

func (r *v3Reader) points(b []byte) []geom.Point {
	if r.alias {
		if v, ok := mmap.Cast[geom.Point](b); ok {
			return v
		}
	}
	f := mmap.F64s(b)
	out := make([]geom.Point, len(f)/2)
	for i := range out {
		out[i] = geom.Pt(f[2*i], f[2*i+1])
	}
	return out
}

func (r *v3Reader) transforms(b []byte) []geom.Transform {
	if r.alias {
		if v, ok := mmap.Cast[geom.Transform](b); ok {
			return v
		}
	}
	f := mmap.F64s(b)
	out := make([]geom.Transform, len(f)/4)
	for i := range out {
		out[i] = geom.Transform{S: f[4*i], Theta: f[4*i+1], T: geom.Pt(f[4*i+2], f[4*i+3])}
	}
	return out
}

func (r *v3Reader) rects(b []byte) []geom.Rect {
	if r.alias {
		if v, ok := mmap.Cast[geom.Rect](b); ok {
			return v
		}
	}
	f := mmap.F64s(b)
	out := make([]geom.Rect, len(f)/4)
	for i := range out {
		out[i] = geom.Rect{Min: geom.Pt(f[4*i], f[4*i+1]), Max: geom.Pt(f[4*i+2], f[4*i+3])}
	}
	return out
}

func (r *v3Reader) geomBounds(b []byte) []core.GeomBound {
	if r.alias {
		if v, ok := mmap.Cast[core.GeomBound](b); ok {
			return v
		}
	}
	f := mmap.F64s(b)
	out := make([]core.GeomBound, len(f)/7)
	for i := range out {
		o := f[7*i : 7*i+7]
		out[i] = core.GeomBound{CX: o[0], CY: o[1], R: o[2], MinX: o[3], MinY: o[4], MaxX: o[5], MaxY: o[6]}
	}
	return out
}

func (r *v3Reader) entryMeta(b []byte) []core.EntryMeta {
	if r.alias {
		if v, ok := mmap.Cast[core.EntryMeta](b); ok {
			return v
		}
	}
	w := mmap.I32s(b)
	out := make([]core.EntryMeta, len(w)/4)
	for i := range out {
		out[i] = core.EntryMeta{ShapeID: w[4*i], Copy: w[4*i+1], DiamI: w[4*i+2], DiamJ: w[4*i+3]}
	}
	return out
}

func (r *v3Reader) gridHeaders(b []byte) []gridHeader {
	if r.alias {
		if v, ok := mmap.Cast[gridHeader](b); ok {
			return v
		}
	}
	out := make([]gridHeader, len(b)/80)
	for i := range out {
		row := b[i*80:]
		f := mmap.F64s(row[:48])
		w := mmap.I32s(row[48:80])
		out[i] = gridHeader{
			MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3], Cw: f[4], Ch: f[5],
			Nx: w[0], Ny: w[1], SegOff: w[2], NSegs: w[3],
			CellOff: w[4], NCells: w[5], IDOff: w[6], NIDs: w[7],
		}
	}
	return out
}

// v3Options is the parsed OPTS section.
type v3Options struct {
	opts      Options
	nImages   int
	nShapes   int
	nEntries  int
	nVerts    int
	nRawVerts int
	backend   rangesearch.Kind
}

func parseV3Options(b []byte) (v3Options, error) {
	if len(b) != v3OptsLen {
		return v3Options{}, fmt.Errorf("geosir: OPTS section is %d bytes, want %d", len(b), v3OptsLen)
	}
	c := cursor{b: b}
	var o v3Options
	o.opts.Alpha = c.f64()
	o.opts.Beta = c.f64()
	o.opts.Tau = c.f64()
	o.opts.AngleTol = c.f64()
	hc := c.u32()
	nimg := c.u32()
	nsh := c.u32()
	nent := c.u32()
	nv := c.u32()
	nraw := c.u32()
	bk := c.u32()
	_ = c.u32()
	if hc > maxHashCurves {
		return v3Options{}, fmt.Errorf("geosir: implausible hash-curve count %d", hc)
	}
	for _, n := range [5]uint32{nimg, nsh, nent, nv, nraw} {
		if n > maxCount {
			return v3Options{}, fmt.Errorf("geosir: implausible count %d in OPTS", n)
		}
	}
	kind, err := v3BackendKind(bk)
	if err != nil {
		return v3Options{}, err
	}
	o.opts.HashCurves = int(hc)
	o.nImages, o.nShapes, o.nEntries = int(nimg), int(nsh), int(nent)
	o.nVerts, o.nRawVerts = int(nv), int(nraw)
	o.backend = kind
	return o, nil
}

// v3RawImages parses the raw family into per-image shape lists (the
// same payload a GSIR2 stream carries), for the slow rebuild path and
// for shape construction during fast assembly.
func (r *v3Reader) v3RawImages(o v3Options) ([]savedImage, error) {
	imgsB, err := r.need("IMGS")
	if err != nil {
		return nil, err
	}
	shpmB, err := r.need("SHPM")
	if err != nil {
		return nil, err
	}
	rawvB, err := r.need("RAWV")
	if err != nil {
		return nil, err
	}
	c := cursor{b: imgsB}
	nimg := int(c.u32())
	if c.err != nil || nimg != o.nImages {
		return nil, fmt.Errorf("geosir: IMGS declares %d images, OPTS %d", nimg, o.nImages)
	}
	if len(shpmB) != o.nShapes*16 {
		return nil, fmt.Errorf("geosir: SHPM is %d bytes for %d shapes", len(shpmB), o.nShapes)
	}
	rawv := r.points(rawvB)
	if len(rawv) != o.nRawVerts {
		return nil, fmt.Errorf("geosir: RAWV holds %d vertices, OPTS declares %d", len(rawv), o.nRawVerts)
	}
	shpm := r.i32s(shpmB)
	out := make([]savedImage, 0, nimg)
	sid := 0
	for i := 0; i < nimg; i++ {
		id := int(int32(c.u32()))
		nsh := int(c.u32())
		if c.err != nil {
			return nil, fmt.Errorf("geosir: IMGS truncated at image %d", i)
		}
		img := savedImage{id: id, shapes: make([]Shape, 0, nsh)}
		for j := 0; j < nsh; j++ {
			if sid >= o.nShapes {
				return nil, fmt.Errorf("geosir: IMGS declares more shapes than SHPM holds")
			}
			row := shpm[sid*4 : sid*4+4]
			flags, off, n := row[0], row[1], row[2]
			if off < 0 || n < 0 || int(off)+int(n) > len(rawv) {
				return nil, fmt.Errorf("geosir: shape %d raw range [%d,+%d) outside RAWV", sid, off, n)
			}
			img.shapes = append(img.shapes, Shape{
				Pts:    rawv[off : int(off)+int(n) : int(off)+int(n)],
				Closed: flags&1 == 1,
			})
			sid++
		}
		out = append(out, img)
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("geosir: %d trailing bytes in IMGS", c.remaining())
	}
	if sid != o.nShapes {
		return nil, fmt.Errorf("geosir: IMGS covers %d shapes, SHPM holds %d", sid, o.nShapes)
	}
	return out, nil
}

// assembleV3 stitches a frozen engine from verified sections: O(n)
// slice casts and pointer fills, no geometry. The alias flag decides
// whether array sections are served in place (mmap) or copied.
func assembleV3(r *v3Reader, o v3Options) (*Engine, error) {
	images, err := r.v3RawImages(o)
	if err != nil {
		return nil, err
	}
	// Shapes, in id order (= image-group order).
	shapes := make([]core.Shape, 0, o.nShapes)
	for _, img := range images {
		for _, p := range img.shapes {
			shapes = append(shapes, core.Shape{ID: len(shapes), Image: img.id, Poly: p})
		}
	}

	get := func(tag string) ([]byte, error) { return r.need(tag) }
	entmB, err := get("ENTM")
	if err != nil {
		return nil, err
	}
	enttB, err := get("ENTT")
	if err != nil {
		return nil, err
	}
	eoffB, err := get("EOFF")
	if err != nil {
		return nil, err
	}
	ventB, err := get("VENT")
	if err != nil {
		return nil, err
	}
	evtxB, err := get("EVTX")
	if err != nil {
		return nil, err
	}
	gbndB, err := get("GBND")
	if err != nil {
		return nil, err
	}
	if len(entmB) != o.nEntries*16 || len(enttB) != o.nEntries*64 ||
		len(eoffB) != (o.nEntries+1)*4 || len(ventB) != o.nVerts*4 ||
		len(evtxB) != o.nVerts*16 || len(gbndB) != o.nEntries*56 {
		return nil, fmt.Errorf("geosir: entry sections disagree with OPTS counts")
	}
	metas := r.entryMeta(entmB)
	trans := r.transforms(enttB)
	entryOff := r.i32s(eoffB)
	vertEntry := r.i32s(ventB)
	verts := r.points(evtxB)
	gbounds := r.geomBounds(gbndB)

	// Oracle grids from the pooled arrays.
	grdhB, err := get("GRDH")
	if err != nil {
		return nil, err
	}
	gsegB, err := get("GSEG")
	if err != nil {
		return nil, err
	}
	gcelB, err := get("GCEL")
	if err != nil {
		return nil, err
	}
	gidsB, err := get("GIDS")
	if err != nil {
		return nil, err
	}
	if len(grdhB) != o.nEntries*80 {
		return nil, fmt.Errorf("geosir: GRDH is %d bytes for %d entries", len(grdhB), o.nEntries)
	}
	heads := r.gridHeaders(grdhB)
	gseg := r.f64s(gsegB)
	gcel := r.i32s(gcelB)
	gids := r.i32s(gidsB)
	grids := make([]*shapeindex.SegmentGrid, o.nEntries)
	for i, h := range heads {
		n := int(h.NSegs)
		so, co, io_ := int(h.SegOff), int(h.CellOff), int(h.IDOff)
		if n <= 0 || so < 0 || 5*(so+n) > 5*so+5*n || so+n > len(gseg)/5 ||
			co < 0 || int(h.NCells) < 0 || co+int(h.NCells) > len(gcel) ||
			io_ < 0 || int(h.NIDs) < 0 || io_+int(h.NIDs) > len(gids) {
			return nil, fmt.Errorf("geosir: entry %d grid header out of bounds", i)
		}
		base5 := 5 * so
		seg := gseg[base5 : base5+5*n]
		g, err := shapeindex.GridFromParts(shapeindex.GridParts{
			Ax: seg[0:n:n], Ay: seg[n : 2*n : 2*n], Dx: seg[2*n : 3*n : 3*n],
			Dy: seg[3*n : 4*n : 4*n], InvL2: seg[4*n : 5*n : 5*n],
			Bounds: geom.Rect{Min: geom.Pt(h.MinX, h.MinY), Max: geom.Pt(h.MaxX, h.MaxY)},
			Nx:     int(h.Nx), Ny: int(h.Ny), Cw: h.Cw, Ch: h.Ch,
			CellStart: gcel[co : co+int(h.NCells) : co+int(h.NCells)],
			CellIDs:   gids[io_ : io_+int(h.NIDs) : io_+int(h.NIDs)],
		})
		if err != nil {
			return nil, fmt.Errorf("geosir: entry %d: %w", i, err)
		}
		grids[i] = g
	}

	// Range-search backend: the kd-tree sections when present, a
	// deterministic rebuild from the vertex array otherwise.
	var backend rangesearch.Backend
	if o.backend == rangesearch.KindKDTree {
		kdtpB, err := get("KDTP")
		if err != nil {
			return nil, err
		}
		kdtiB, err := get("KDTI")
		if err != nil {
			return nil, err
		}
		kdtbB, err := get("KDTB")
		if err != nil {
			return nil, err
		}
		if len(kdtpB) != o.nVerts*16 || len(kdtiB) != o.nVerts*4 || len(kdtbB) != o.nVerts*32 {
			return nil, fmt.Errorf("geosir: kd-tree sections disagree with vertex count %d", o.nVerts)
		}
		t, err := rangesearch.KDTreeFromParts(rangesearch.KDTreeParts{
			Pts: r.points(kdtpB), IDs: r.i32s(kdtiB), Bounds: r.rects(kdtbB),
		})
		if err != nil {
			return nil, err
		}
		backend = t
	} else {
		backend = rangesearch.New(o.backend, verts)
	}

	base, err := core.BaseFromParts(core.BaseSpec{
		Opts:       coreOptsFor(o.opts),
		Shapes:     shapes,
		EntryMeta:  metas,
		EntryTrans: trans,
		Verts:      verts,
		VertEntry:  vertEntry,
		EntryOff:   entryOff,
		GeomBounds: gbounds,
		Grids:      grids,
		Backend:    backend,
	})
	if err != nil {
		return nil, err
	}

	// Diameter angles and per-image graphs.
	dangB, err := get("DANG")
	if err != nil {
		return nil, err
	}
	if len(dangB) != o.nShapes*8 {
		return nil, fmt.Errorf("geosir: DANG is %d bytes for %d shapes", len(dangB), o.nShapes)
	}
	dang := r.f64s(dangB)
	diamAng := make(map[int]float64, o.nShapes)
	for sid, a := range dang {
		diamAng[sid] = a
	}
	grphB, err := get("GRPH")
	if err != nil {
		return nil, err
	}
	graphs, imageOrder, err := parseV3Graphs(grphB, o)
	if err != nil {
		return nil, err
	}

	db, err := query.DBFromParts(query.DBParts{
		Opts:    queryOptsFor(o.opts),
		Base:    base,
		Images:  imageOrder,
		Graphs:  graphs,
		DiamAng: diamAng,
	})
	if err != nil {
		return nil, err
	}

	eng := New(o.opts)
	eng.db = db

	// Geometric hash table from the persisted quadruples — map inserts
	// only, no curve geometry.
	quadB, err := get("QUAD")
	if err != nil {
		return nil, err
	}
	if len(quadB) != o.nShapes*16 {
		return nil, fmt.Errorf("geosir: QUAD is %d bytes for %d shapes", len(quadB), o.nShapes)
	}
	quads := r.i32s(quadB)
	family, err := geohash.NewFamily(o.opts.HashCurves)
	if err != nil {
		return nil, err
	}
	eng.family = family
	eng.table = geohash.NewTable(family)
	for sid := 0; sid < o.nShapes; sid++ {
		row := quads[sid*4 : sid*4+4]
		if row[0] < 0 {
			continue // shape skipped by the hash table at freeze
		}
		q := geohash.Quadruple{int(row[0]), int(row[1]), int(row[2]), int(row[3])}
		if err := eng.table.Insert(sid, q); err != nil {
			return nil, fmt.Errorf("geosir: rehashing shape %d: %w", sid, err)
		}
	}

	// ANN index from the persisted signature family.
	annpB, err := get("ANNP")
	if err != nil {
		return nil, err
	}
	annsB, err := get("ANNS")
	if err != nil {
		return nil, err
	}
	pre, err := parseV3AnnParams(annpB, annsB, r)
	if err != nil {
		return nil, err
	}
	eng.annPre = pre
	eng.buildANN()
	eng.frozen = true
	return eng, nil
}

// coreOptsFor / queryOptsFor mirror New's option derivation so an
// assembled engine reports identical effective options.
func queryOptsFor(opts Options) query.Options {
	qopts := query.DefaultOptions()
	if opts.Alpha > 0 {
		qopts.Core.Alpha = opts.Alpha
	}
	if opts.Beta > 0 {
		qopts.Core.Beta = opts.Beta
	}
	if opts.Tau > 0 {
		qopts.Tau = opts.Tau
	}
	if opts.AngleTol > 0 {
		qopts.AngleTol = opts.AngleTol
	}
	return qopts
}

func coreOptsFor(opts Options) core.Options {
	return queryOptsFor(opts).Core
}

func parseV3Graphs(b []byte, o v3Options) (map[int]*query.ImageGraph, []int, error) {
	c := cursor{b: b}
	nimg := int(c.u32())
	if c.err != nil || nimg != o.nImages {
		return nil, nil, fmt.Errorf("geosir: GRPH declares %d images, OPTS %d", nimg, o.nImages)
	}
	graphs := make(map[int]*query.ImageGraph, nimg)
	order := make([]int, 0, nimg)
	for i := 0; i < nimg; i++ {
		id := int(int32(c.u32()))
		nsh := int(c.u32())
		if c.err != nil || nsh < 0 || nsh > o.nShapes {
			return nil, nil, fmt.Errorf("geosir: GRPH image %d has implausible shape count", i)
		}
		shapeIDs := make([]int, nsh)
		for j := range shapeIDs {
			sid := int(int32(c.u32()))
			if sid < 0 || sid >= o.nShapes {
				return nil, nil, fmt.Errorf("geosir: GRPH image %d references shape %d of %d", id, sid, o.nShapes)
			}
			shapeIDs[j] = sid
		}
		nedges := int(c.u32())
		if c.err != nil || nedges < 0 || nedges > o.nShapes*o.nShapes {
			return nil, nil, fmt.Errorf("geosir: GRPH image %d has implausible edge count", id)
		}
		edges := make([]query.GraphEdge, 0, nedges)
		for j := 0; j < nedges; j++ {
			from := int(int32(c.u32()))
			to := int(int32(c.u32()))
			lbl := c.u32()
			var rel query.Rel
			switch lbl {
			case v3RelContain:
				rel = query.RelContain
			case v3RelOverlap:
				rel = query.RelOverlap
			default:
				return nil, nil, fmt.Errorf("geosir: GRPH image %d edge %d has unknown label %d", id, j, lbl)
			}
			edges = append(edges, query.GraphEdge{From: from, To: to, Label: rel})
		}
		if c.err != nil {
			return nil, nil, fmt.Errorf("geosir: GRPH truncated in image %d", id)
		}
		if _, dup := graphs[id]; dup {
			return nil, nil, fmt.Errorf("geosir: GRPH repeats image %d", id)
		}
		graphs[id] = query.GraphFromParts(id, shapeIDs, edges)
		order = append(order, id)
	}
	if c.remaining() != 0 {
		return nil, nil, fmt.Errorf("geosir: %d trailing bytes in GRPH", c.remaining())
	}
	return graphs, order, nil
}

func parseV3AnnParams(annp, anns []byte, r *v3Reader) (*annPreload, error) {
	if len(annp) != 24 {
		return nil, fmt.Errorf("geosir: ANNP section is %d bytes, want 24", len(annp))
	}
	c := cursor{b: annp}
	var p annindex.Params
	p.Seed = c.u64()
	gridRes := c.u32()
	bands := c.u32()
	rows := c.u32()
	n := c.u32()
	if gridRes < 1 || gridRes > 4096 || bands < 1 || bands > 4096 || rows < 1 || rows > 64 {
		return nil, fmt.Errorf("geosir: implausible ANN parameters %d/%d/%d", gridRes, bands, rows)
	}
	if n > maxCount {
		return nil, fmt.Errorf("geosir: implausible ANN entry count %d", n)
	}
	p.GridRes, p.Bands, p.Rows = int(gridRes), int(bands), int(rows)
	h := int(bands) * int(rows)
	if want := int(n) * h * 8; want != len(anns) {
		return nil, fmt.Errorf("geosir: ANNS holds %d bytes of signatures, want %d", len(anns), want)
	}
	return &annPreload{params: p, sigs: r.u64s(anns), n: int(n)}, nil
}

// loadGSIR3Bytes runs the strict load over a complete byte image: any
// checksum or framing damage anywhere fails it.
func loadGSIR3Bytes(data []byte, alias bool) (*Engine, error) {
	secs, err := parseV3Layout(data)
	if err != nil {
		return nil, err
	}
	m, bad := v3Verify(data, secs)
	if len(bad) > 0 {
		return nil, fmt.Errorf("geosir: section %s checksum mismatch", bad[0])
	}
	r := &v3Reader{sec: m, alias: alias && mmap.CanCast()}
	optsB, err := r.need("OPTS")
	if err != nil {
		return nil, err
	}
	o, err := parseV3Options(optsB)
	if err != nil {
		return nil, err
	}
	return assembleV3(r, o)
}

// loadPartialGSIR3Bytes salvages what a damaged GSIR3 image still
// proves intact. Derived-section damage falls back to the slow rebuild
// from the raw family (deterministic, so the rebuilt engine answers
// identically to the original); raw-family or structural damage is
// unrecoverable.
func loadPartialGSIR3Bytes(data []byte) (*Engine, *Recovery, error) {
	secs, err := parseV3Layout(data)
	if err != nil {
		return nil, nil, fmt.Errorf("geosir: unrecoverable GSIR3 layout: %w", err)
	}
	m, bad := v3Verify(data, secs)
	for _, tag := range bad {
		if v3RawTags[tag] {
			return nil, nil, fmt.Errorf("geosir: unrecoverable damage in raw section %s", tag)
		}
	}
	// Copy-decode, never alias: a salvage result must not pin the
	// (possibly temporary) source bytes.
	r := &v3Reader{sec: m, alias: false}
	optsB, err := r.need("OPTS")
	if err != nil {
		return nil, nil, err
	}
	o, err := parseV3Options(optsB)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Format: "GSIR3", ImagesExpected: o.nImages}
	if len(bad) == 0 {
		if eng, err := assembleV3(r, o); err == nil {
			rec.ImagesLoaded = o.nImages
			return eng, rec, nil
		}
		// Fast assembly failed despite verified checksums (e.g. a
		// writer/reader version skew in a derived section): fall back to
		// the slow rebuild below and account the loss.
		rec.AuxDropped++
	} else {
		rec.AuxDropped = len(bad)
	}
	images, err := r.v3RawImages(o)
	if err != nil {
		return nil, nil, fmt.Errorf("geosir: unrecoverable raw image data: %w", err)
	}
	eng := New(o.opts)
	for _, img := range images {
		if err := eng.AddImage(img.id, img.shapes); err != nil {
			return nil, nil, fmt.Errorf("geosir: image %d: %w", img.id, err)
		}
		rec.ImagesLoaded++
	}
	if err := freezeLoaded(eng); err != nil {
		return nil, nil, err
	}
	return eng, rec, nil
}

// readAllWithMagic re-assembles the complete byte image of a stream
// whose magic has already been consumed.
func readAllWithMagic(magic string, r io.Reader) ([]byte, error) {
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 0, len(magic)+len(rest))
	data = append(data, magic...)
	return append(data, rest...), nil
}

// peekGSIR3 parses only the header, table, and OPTS payload of a GSIR3
// stream (magic already consumed), verifying the table and OPTS
// checksums. Sequential: pad bytes up to OPTS are discarded, array
// sections after it are never read.
func peekGSIR3(r io.Reader) (SnapshotInfo, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return SnapshotInfo{}, fmt.Errorf("geosir: reading GSIR3 header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != v3Version {
		return SnapshotInfo{}, fmt.Errorf("geosir: unsupported GSIR3 version %d", v)
	}
	nsec := binary.LittleEndian.Uint32(hdr[2:])
	if nsec == 0 || nsec > v3MaxSections {
		return SnapshotInfo{}, fmt.Errorf("geosir: implausible GSIR3 section count %d", nsec)
	}
	tableLen := int(nsec) * v3TableEntry
	buf, err := readCapped(r, tableLen+4)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("geosir: reading GSIR3 section table: %w", err)
	}
	table := buf[:tableLen]
	if crc32.ChecksumIEEE(table) != binary.LittleEndian.Uint32(buf[tableLen:]) {
		return SnapshotInfo{}, fmt.Errorf("geosir: GSIR3 section table checksum mismatch")
	}
	var opts *v3Section
	for i := 0; i < int(nsec); i++ {
		row := table[i*v3TableEntry:]
		if string(row[0:4]) == "OPTS" {
			opts = &v3Section{
				off: binary.LittleEndian.Uint64(row[8:]),
				len: binary.LittleEndian.Uint64(row[16:]),
				crc: binary.LittleEndian.Uint32(row[24:]),
			}
			break
		}
	}
	if opts == nil {
		return SnapshotInfo{}, fmt.Errorf("geosir: GSIR3 snapshot missing OPTS section")
	}
	pos := uint64(v3HeaderLen + tableLen + 4)
	if opts.off < pos || opts.len != v3OptsLen {
		return SnapshotInfo{}, fmt.Errorf("geosir: implausible OPTS section placement")
	}
	if _, err := io.CopyN(io.Discard, r, int64(opts.off-pos)); err != nil {
		return SnapshotInfo{}, fmt.Errorf("geosir: seeking OPTS section: %w", err)
	}
	payload, err := readCapped(r, int(opts.len))
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("geosir: reading OPTS section: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != opts.crc {
		return SnapshotInfo{}, fmt.Errorf("geosir: OPTS section checksum mismatch")
	}
	o, err := parseV3Options(payload)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{
		Format:     FormatGSIR3,
		FormatName: "GSIR3",
		Options:    o.opts,
		Images:     o.nImages,
		Shapes:     o.nShapes,
		Sections:   int(nsec),
	}, nil
}

// engineStorage records how an engine's snapshot is backed, for /statz
// reporting and unmap lifecycle. nil means heap-built (AddImage+Freeze
// or a copy-decode load).
type engineStorage struct {
	mapping *mmap.Mapping
}

// StorageStats describes how an engine's index is backed.
type StorageStats struct {
	// LoadMode is "heap" (all structures on the Go heap) or "mmap"
	// (array sections served in place from a mapped snapshot).
	LoadMode string
	// MappedBytes is the size of the backing mapping (0 for heap).
	MappedBytes int64
	// ResidentBytes estimates how much of the mapping is currently in
	// memory (-1: no estimate available on this platform; 0 for heap).
	ResidentBytes int64
}

// StorageStats reports how this engine's index is backed.
func (e *Engine) StorageStats() StorageStats {
	if e.stor == nil || e.stor.mapping == nil {
		return StorageStats{LoadMode: "heap"}
	}
	return StorageStats{
		LoadMode:      "mmap",
		MappedBytes:   int64(e.stor.mapping.Len()),
		ResidentBytes: e.stor.mapping.Resident(),
	}
}

// Close releases the engine's snapshot mapping, if any. The engine must
// not be queried afterward: structures that aliased the mapping are
// gone. Heap-backed engines need no Close (it is a no-op); mmap-backed
// engines that are simply dropped are unmapped by a finalizer once
// unreachable (at which point no query can be in flight).
func (e *Engine) Close() error {
	if e.stor == nil || e.stor.mapping == nil {
		return nil
	}
	runtime.SetFinalizer(e, nil)
	m := e.stor.mapping
	e.stor.mapping = nil
	return m.Close()
}

// LoadFileMmap opens a GSIR3 snapshot by mapping it and serving the
// array sections in place: open cost is CRC verification plus O(n)
// pointer stitching — no geometry, no per-element decode — and the
// page cache decides residency. Falls back with an error (it does NOT
// silently heap-load) when the file is not GSIR3 or the platform/build
// cannot map or cast; callers wanting the fallback use LoadAnyMode.
func LoadFileMmap(path string) (*Engine, error) {
	if !mmap.Supported() || !mmap.CanCast() {
		return nil, fmt.Errorf("geosir: mmap load unsupported on this platform/build: %w", mmap.ErrUnsupported)
	}
	m, err := mmap.Map(path)
	if err != nil {
		return nil, err
	}
	eng, err := loadGSIR3Bytes(m.Data(), true)
	if err != nil {
		m.Close()
		return nil, err
	}
	eng.stor = &engineStorage{mapping: m}
	runtime.SetFinalizer(eng, func(e *Engine) { e.Close() })
	return eng, nil
}
